//! The retired `BinaryHeap<Reverse<Event>>` event-driven simulator, kept
//! verbatim as a reference implementation.
//!
//! `fantom_sim`'s scheduler now runs on a position-indexed heap of per-source
//! FIFOs (`fantom_sim::queue`); this module preserves its predecessor so that
//!
//! * `tests/sim_parity.rs` can pin the new scheduler's waveforms (and, in
//!   transport mode, its exact event ordering) against the old one on the
//!   benchmark corpus, and
//! * `bench_json` can measure `sim.events_per_s` for both schedulers from
//!   the same binary.
//!
//! The code is the pre-rewrite `crates/sim/src/sim.rs` with imports pointed
//! at `fantom_sim` and the types prefixed `Heap*`; behaviour is untouched.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

use fantom_boolean::collections::HashMap;
use fantom_sim::{DelayModel, NetId, Netlist, Waveform};

/// Errors reported by the reference simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeapSimError {
    /// The circuit did not reach quiescence within the event budget.
    Oscillation {
        /// Number of events processed before giving up.
        events_processed: usize,
    },
}

impl fmt::Display for HeapSimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeapSimError::Oscillation { events_processed } => {
                write!(
                    f,
                    "circuit did not settle after {events_processed} events (oscillation)"
                )
            }
        }
    }
}

impl std::error::Error for HeapSimError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    time: u64,
    seq: u64,
    net: NetId,
    value: bool,
    /// Index of the gate that scheduled this event, if any (used by the
    /// inertial delay mode to supersede stale transitions).
    origin: Option<usize>,
}

/// Delay-style selector mirroring `fantom_sim::DelayStyle`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HeapDelayStyle {
    /// Every scheduled transition is delivered.
    #[default]
    Transport,
    /// At most one outstanding transition per gate; rescinded changes drop.
    Inertial,
}

/// The retired global-heap transport/inertial simulator.
#[derive(Debug)]
pub struct HeapSimulator<'a> {
    netlist: &'a Netlist,
    gate_delays: Vec<u64>,
    dff_delay: u64,
    style: HeapDelayStyle,
    values: Vec<bool>,
    pending: Vec<bool>,
    active_event: Vec<Option<u64>>,
    queue: BinaryHeap<Reverse<Event>>,
    fanout_offsets: Vec<u32>,
    fanout_data: Vec<u32>,
    fanout_dff_clocks: Vec<Vec<usize>>,
    time: u64,
    seq: u64,
    events_processed: u64,
    monitored: HashMap<usize, Waveform>,
}

impl<'a> HeapSimulator<'a> {
    /// Create a reference simulator with transport-delay semantics.
    pub fn new(netlist: &'a Netlist, delay_model: &DelayModel) -> Self {
        Self::with_style(netlist, delay_model, HeapDelayStyle::Transport)
    }

    /// Create a reference simulator with an explicit delay style.
    pub fn with_style(
        netlist: &'a Netlist,
        delay_model: &DelayModel,
        style: HeapDelayStyle,
    ) -> Self {
        let gate_delays = delay_model.delays_for(netlist.num_gates());
        let gate_inputs: Vec<Vec<usize>> = netlist
            .gates()
            .iter()
            .map(|gate| {
                let mut nets: Vec<usize> = gate.inputs.iter().map(|n| n.0).collect();
                nets.sort_unstable();
                nets.dedup();
                nets
            })
            .collect();
        let mut counts = vec![0u32; netlist.num_nets() + 1];
        for nets in &gate_inputs {
            for &n in nets {
                counts[n + 1] += 1;
            }
        }
        let mut fanout_offsets = counts;
        for i in 1..fanout_offsets.len() {
            fanout_offsets[i] += fanout_offsets[i - 1];
        }
        let mut fanout_data = vec![0u32; *fanout_offsets.last().expect("offsets") as usize];
        let mut cursor: Vec<u32> = fanout_offsets[..fanout_offsets.len() - 1].to_vec();
        for (gi, nets) in gate_inputs.iter().enumerate() {
            for &n in nets {
                fanout_data[cursor[n] as usize] = gi as u32;
                cursor[n] += 1;
            }
        }
        let mut fanout_dff_clocks = vec![Vec::new(); netlist.num_nets()];
        for (di, dff) in netlist.dffs().iter().enumerate() {
            fanout_dff_clocks[dff.clock.0].push(di);
        }
        HeapSimulator {
            netlist,
            gate_delays,
            dff_delay: delay_model.max_delay(),
            style,
            values: vec![false; netlist.num_nets()],
            pending: vec![false; netlist.num_gates()],
            active_event: vec![None; netlist.num_gates()],
            queue: BinaryHeap::with_capacity(netlist.num_gates() + netlist.num_nets()),
            fanout_offsets,
            fanout_data,
            fanout_dff_clocks,
            time: 0,
            seq: 0,
            events_processed: 0,
            monitored: HashMap::default(),
        }
    }

    /// Current simulation time.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Cumulative number of popped events (stale inertial tombstones
    /// included — the cost the indexed queue eliminates).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Current values of every net, indexed by `NetId`.
    pub fn net_values(&self) -> &[bool] {
        &self.values
    }

    /// Override the propagation delay of a single gate.
    pub fn set_gate_delay(&mut self, gate_index: usize, delay: u64) {
        assert!(delay > 0, "gate delay must be positive");
        self.gate_delays[gate_index] = delay;
    }

    /// Current value of a net.
    pub fn value(&self, net: NetId) -> bool {
        self.values[net.0]
    }

    /// Begin recording a waveform for `net`.
    pub fn monitor(&mut self, net: NetId) {
        self.monitored
            .entry(net.0)
            .or_insert_with(|| vec![(self.time, self.values[net.0])]);
    }

    /// The recorded waveform of a monitored net, if it was monitored.
    pub fn waveform(&self, net: NetId) -> Option<&Waveform> {
        self.monitored.get(&net.0)
    }

    /// Force a net to a value *now*.
    pub fn set_input(&mut self, net: NetId, value: bool) {
        self.schedule_input(net, value, 0);
    }

    /// Schedule a primary-input change `delta` time units from now.
    pub fn schedule_input(&mut self, net: NetId, value: bool, delta: u64) {
        let event = Event {
            time: self.time + delta,
            seq: self.seq,
            net,
            value,
            origin: None,
        };
        self.seq += 1;
        self.queue.push(Reverse(event));
    }

    /// Delay-free fixpoint initialisation (see `fantom_sim`'s version).
    pub fn initialize_consistent(&mut self, fixed: &[(NetId, bool)]) {
        let fixed_idx: Vec<usize> = fixed.iter().map(|(n, _)| n.0).collect();
        for &(net, value) in fixed {
            self.values[net.0] = value;
        }
        for _ in 0..=self.netlist.num_gates() {
            let mut changed = false;
            for gate in self.netlist.gates() {
                if fixed_idx.contains(&gate.output.0) {
                    continue;
                }
                let new_val = gate
                    .kind
                    .eval_iter(gate.inputs.iter().map(|n| self.values[n.0]));
                if self.values[gate.output.0] != new_val {
                    self.values[gate.output.0] = new_val;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        for (gi, gate) in self.netlist.gates().iter().enumerate() {
            self.pending[gi] = self.values[gate.output.0];
            self.active_event[gi] = None;
        }
        for (net, wave) in self.monitored.iter_mut() {
            wave.push((self.time, self.values[*net]));
        }
    }

    /// Process events until the queue drains or `max_events` have been
    /// handled.
    ///
    /// # Errors
    ///
    /// Returns [`HeapSimError::Oscillation`] when the budget is exhausted.
    pub fn run_until_quiet(&mut self, max_events: usize) -> Result<u64, HeapSimError> {
        let mut processed = 0;
        while let Some(Reverse(event)) = self.queue.pop() {
            processed += 1;
            self.events_processed += 1;
            if processed > max_events {
                return Err(HeapSimError::Oscillation {
                    events_processed: processed,
                });
            }
            self.time = self.time.max(event.time);
            self.apply(event);
        }
        Ok(self.time)
    }

    fn apply(&mut self, event: Event) {
        if self.style == HeapDelayStyle::Inertial {
            if let Some(gi) = event.origin {
                if self.active_event[gi] != Some(event.seq) {
                    return;
                }
                self.active_event[gi] = None;
            }
        }
        let net = event.net.0;
        let old = self.values[net];
        if old == event.value {
            return;
        }
        self.values[net] = event.value;
        if let Some(wave) = self.monitored.get_mut(&net) {
            wave.push((event.time, event.value));
        }

        if event.value && !old {
            for &di in &self.fanout_dff_clocks[net] {
                let dff = &self.netlist.dffs()[di];
                let sampled = self.values[dff.data.0];
                let ev = Event {
                    time: event.time + self.dff_delay,
                    seq: self.seq,
                    net: dff.q,
                    value: sampled,
                    origin: None,
                };
                self.seq += 1;
                self.queue.push(Reverse(ev));
            }
        }

        let netlist = self.netlist;
        let (start, end) = (
            self.fanout_offsets[net] as usize,
            self.fanout_offsets[net + 1] as usize,
        );
        for k in start..end {
            let gi = self.fanout_data[k] as usize;
            let gate = &netlist.gates()[gi];
            let new_val = gate
                .kind
                .eval_iter(gate.inputs.iter().map(|n| self.values[n.0]));
            match self.style {
                HeapDelayStyle::Transport => {
                    if new_val != self.pending[gi] {
                        self.pending[gi] = new_val;
                        self.schedule_gate_event(gi, event.time, new_val);
                    }
                }
                HeapDelayStyle::Inertial => {
                    if new_val == self.values[gate.output.0] {
                        self.active_event[gi] = None;
                        self.pending[gi] = new_val;
                    } else if new_val != self.pending[gi] || self.active_event[gi].is_none() {
                        self.pending[gi] = new_val;
                        self.schedule_gate_event(gi, event.time, new_val);
                    }
                }
            }
        }
    }

    fn schedule_gate_event(&mut self, gate_index: usize, now: u64, value: bool) {
        let gate = &self.netlist.gates()[gate_index];
        let ev = Event {
            time: now + self.gate_delays[gate_index],
            seq: self.seq,
            net: gate.output,
            value,
            origin: Some(gate_index),
        };
        self.active_event[gate_index] = Some(ev.seq);
        self.seq += 1;
        self.queue.push(Reverse(ev));
    }

    /// Evaluate every gate once and schedule updates.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapSimError::Oscillation`].
    pub fn settle(&mut self, max_events: usize) -> Result<u64, HeapSimError> {
        let netlist = self.netlist;
        for (gi, gate) in netlist.gates().iter().enumerate() {
            let new_val = gate
                .kind
                .eval_iter(gate.inputs.iter().map(|n| self.values[n.0]));
            self.pending[gi] = new_val;
            if new_val != self.values[gate.output.0] {
                let now = self.time;
                self.schedule_gate_event(gi, now, new_val);
            }
        }
        self.run_until_quiet(max_events)
    }

    /// Set a net's value directly without scheduling.
    pub fn preset(&mut self, net: NetId, value: bool) {
        self.values[net.0] = value;
        if let Some(wave) = self.monitored.get_mut(&net.0) {
            wave.push((self.time, value));
        }
    }
}
