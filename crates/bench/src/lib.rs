//! Experiment harness shared by the `fantom-bench` binaries and Criterion
//! benches.
//!
//! The paper's measured evaluation is Table 1 (logic depths of the
//! synthesized machines for five MCNC benchmarks) plus a CPU-time remark in
//! Section 6. This crate regenerates those results and adds the ablation,
//! baseline-comparison and simulation-validation experiments described in
//! `DESIGN.md` (E1–E5).
//!
//! Key pieces: [`PAPER_TABLE1`] (the paper's reported depths),
//! [`table1_options`] (the Table-1 synthesis configuration),
//! [`mod@reference`] (naive literal-vector cube implementations used as
//! perf/correctness references), and the `bench_json` binary — the perf
//! emitter and CI regression gate (`cargo run -p fantom-bench --release
//! --bin bench_json -- OUT.json --baseline BENCH_baseline.json`), covering
//! the micro cube kernel, sparse-vs-dense engine comparisons, Step-2
//! reduction metrics (`reduce.*`) and end-to-end synthesis (`e2e.*`,
//! `e2e_reduced.*`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod heap_sim;
pub mod reference;

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use fantom_flow::FlowTable;
use seance::baseline::{huffman_baseline, stg_expansion_estimate};
use seance::{synthesize, table1_row, SynthesisOptions, SynthesisResult, Table1Row};

/// Depth values reported in Table 1 of the paper, for side-by-side comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaperRow {
    /// Benchmark name as used in this workspace.
    pub benchmark: &'static str,
    /// `fsv` depth reported by the paper.
    pub fsv_depth: usize,
    /// Next-state depth reported by the paper.
    pub y_depth: usize,
    /// Total depth reported by the paper.
    pub total_depth: usize,
}

/// The five rows of the paper's Table 1.
pub const PAPER_TABLE1: [PaperRow; 5] = [
    PaperRow {
        benchmark: "test_example",
        fsv_depth: 3,
        y_depth: 5,
        total_depth: 9,
    },
    PaperRow {
        benchmark: "traffic",
        fsv_depth: 3,
        y_depth: 5,
        total_depth: 9,
    },
    PaperRow {
        benchmark: "lion",
        fsv_depth: 3,
        y_depth: 5,
        total_depth: 9,
    },
    PaperRow {
        benchmark: "lion9",
        fsv_depth: 4,
        y_depth: 5,
        total_depth: 10,
    },
    PaperRow {
        benchmark: "train11",
        fsv_depth: 2,
        y_depth: 5,
        total_depth: 8,
    },
];

/// Synthesis options used for the Table-1 reproduction: the reconstructed
/// benchmark tables are treated as already reduced (see `DESIGN.md`,
/// "Substitutions"), so Step 2 is skipped to keep the canonical state counts.
pub fn table1_options() -> SynthesisOptions {
    SynthesisOptions {
        minimize_states: false,
        ..SynthesisOptions::default()
    }
}

/// Synthesize one benchmark with the Table-1 options.
///
/// # Panics
///
/// Panics if synthesis fails — the shipped corpus always synthesizes.
pub fn synthesize_benchmark(table: &FlowTable) -> SynthesisResult {
    synthesize(table, &table1_options())
        .unwrap_or_else(|e| panic!("synthesis of {} failed: {e}", table.name()))
}

/// A measured Table-1 row together with the paper's reported values and the
/// synthesis wall-clock time.
#[derive(Debug, Clone)]
pub struct Table1Comparison {
    /// Measured row.
    pub measured: Table1Row,
    /// Paper row (if the paper reported this benchmark).
    pub paper: Option<PaperRow>,
    /// Wall-clock time of the synthesis run.
    pub elapsed: Duration,
}

/// Run the Table-1 experiment over the paper suite.
pub fn run_table1() -> Vec<Table1Comparison> {
    fantom_flow::benchmarks::paper_suite()
        .into_iter()
        .map(|table| {
            let start = Instant::now();
            let result = synthesize_benchmark(&table);
            let elapsed = start.elapsed();
            let measured = table1_row(&result);
            let paper = PAPER_TABLE1
                .iter()
                .copied()
                .find(|p| p.benchmark == table.name());
            Table1Comparison {
                measured,
                paper,
                elapsed,
            }
        })
        .collect()
}

/// Render the Table-1 comparison as a text table.
pub fn render_table1(rows: &[Table1Comparison]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:>17} {:>17} {:>21} {:>12}",
        "Benchmark", "fsv depth (p/m)", "Y depth (p/m)", "Total depth (p/m)", "synth time"
    );
    for row in rows {
        let paper = row.paper;
        let fmt_pair = |p: Option<usize>, m: usize| match p {
            Some(p) => format!("{p} / {m}"),
            None => format!("- / {m}"),
        };
        let _ = writeln!(
            out,
            "{:<14} {:>17} {:>17} {:>21} {:>12}",
            row.measured.benchmark,
            fmt_pair(paper.map(|p| p.fsv_depth), row.measured.fsv_depth),
            fmt_pair(paper.map(|p| p.y_depth), row.measured.y_depth),
            fmt_pair(paper.map(|p| p.total_depth), row.measured.total_depth),
            format!("{:.2?}", row.elapsed),
        );
    }
    out
}

/// One row of the baseline-comparison experiment (E4).
#[derive(Debug, Clone)]
pub struct BaselineComparison {
    /// Benchmark name.
    pub benchmark: String,
    /// FANTOM total depth.
    pub fantom_total_depth: usize,
    /// FANTOM next-state literal count (factored form).
    pub fantom_y_literals: usize,
    /// Hazard states protected by `fsv`.
    pub fantom_hazard_states: usize,
    /// Classical Huffman baseline total depth.
    pub baseline_total_depth: usize,
    /// Baseline next-state literal count (all-primes cover).
    pub baseline_y_literals: usize,
    /// Hazard states the baseline leaves unprotected.
    pub baseline_unprotected: usize,
    /// STG-style expansion: extra intermediate states required.
    pub stg_extra_states: usize,
    /// STG-style expansion: single-bit steps after expansion.
    pub stg_expanded_steps: usize,
}

/// Run the baseline comparison over the paper suite.
pub fn run_baselines() -> Vec<BaselineComparison> {
    fantom_flow::benchmarks::paper_suite()
        .into_iter()
        .map(|table| {
            let fantom = synthesize_benchmark(&table);
            let baseline =
                huffman_baseline(&table).unwrap_or_else(|e| panic!("{}: {e}", table.name()));
            let stg = stg_expansion_estimate(&table);
            BaselineComparison {
                benchmark: table.name().to_string(),
                fantom_total_depth: fantom.depth.total_depth,
                fantom_y_literals: fantom.factored.y_literals(),
                fantom_hazard_states: fantom.hazards.hazard_state_count(),
                baseline_total_depth: baseline.total_depth,
                baseline_y_literals: baseline.y_literals,
                baseline_unprotected: baseline.unprotected_hazard_states,
                stg_extra_states: stg.extra_states,
                stg_expanded_steps: stg.expanded_steps,
            }
        })
        .collect()
}

/// Render the baseline comparison as a text table.
pub fn render_baselines(rows: &[BaselineComparison]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:>13} {:>13} {:>14} {:>15} {:>15} {:>13} {:>11}",
        "Benchmark",
        "FANTOM depth",
        "FANTOM lits",
        "FANTOM hazards",
        "Huffman depth",
        "Huffman lits",
        "unprotected",
        "STG states+"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<14} {:>13} {:>13} {:>14} {:>15} {:>15} {:>13} {:>11}",
            r.benchmark,
            r.fantom_total_depth,
            r.fantom_y_literals,
            r.fantom_hazard_states,
            r.baseline_total_depth,
            r.baseline_y_literals,
            r.baseline_unprotected,
            r.stg_extra_states,
        );
    }
    out
}

/// One row of the factoring-ablation experiment (E3).
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Total depth with full Step-7 factoring.
    pub factored_total_depth: usize,
    /// Next-state literal count with factoring.
    pub factored_y_literals: usize,
    /// Total depth with factoring disabled (plain two-level logic).
    pub unfactored_total_depth: usize,
    /// Next-state literal count without factoring.
    pub unfactored_y_literals: usize,
}

/// Run the factoring ablation over the paper suite.
pub fn run_ablation() -> Vec<AblationRow> {
    fantom_flow::benchmarks::paper_suite()
        .into_iter()
        .map(|table| {
            let with = synthesize(&table, &table1_options())
                .unwrap_or_else(|e| panic!("{}: {e}", table.name()));
            let without_opts = SynthesisOptions {
                hazard_factoring: false,
                fsv_all_primes: false,
                ..table1_options()
            };
            let without = synthesize(&table, &without_opts)
                .unwrap_or_else(|e| panic!("{}: {e}", table.name()));
            AblationRow {
                benchmark: table.name().to_string(),
                factored_total_depth: with.depth.total_depth,
                factored_y_literals: with.factored.y_literals(),
                unfactored_total_depth: without.depth.total_depth,
                unfactored_y_literals: without.factored.y_literals(),
            }
        })
        .collect()
}

/// Render the ablation as a text table.
pub fn render_ablation(rows: &[AblationRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:>20} {:>20} {:>22} {:>22}",
        "Benchmark",
        "total depth (factored)",
        "Y literals (factored)",
        "total depth (2-level)",
        "Y literals (2-level)"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<14} {:>20} {:>20} {:>22} {:>22}",
            r.benchmark,
            r.factored_total_depth,
            r.factored_y_literals,
            r.unfactored_total_depth,
            r.unfactored_y_literals,
        );
    }
    out
}

/// One row of the simulation-validation experiment (E5).
#[derive(Debug, Clone)]
pub struct SimulationRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Multiple-input-change transitions simulated (× seeds).
    pub transitions_checked: usize,
    /// Whether every run settled.
    pub all_settled: bool,
    /// Whether every run reached the correct final state.
    pub all_final_states_correct: bool,
    /// Whether every run produced the correct final outputs.
    pub all_outputs_correct: bool,
    /// Glitches observed on invariant state variables across all runs.
    pub invariant_glitches: usize,
}

/// Run the simulation validation over the paper suite with the given delay
/// seeds.
pub fn run_simulation(seeds: &[u64]) -> Vec<SimulationRow> {
    fantom_flow::benchmarks::paper_suite()
        .into_iter()
        .map(|table| {
            let result = synthesize_benchmark(&table);
            let summary = seance::validate::validate_machine(&result, seeds);
            SimulationRow {
                benchmark: table.name().to_string(),
                transitions_checked: summary.len(),
                all_settled: summary.all_settled(),
                all_final_states_correct: summary.all_final_states_correct(),
                all_outputs_correct: summary.all_outputs_correct(),
                invariant_glitches: summary.total_invariant_glitches(),
            }
        })
        .collect()
}

/// Render the simulation validation as a text table.
pub fn render_simulation(rows: &[SimulationRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:>12} {:>9} {:>13} {:>14} {:>17}",
        "Benchmark",
        "transitions",
        "settled",
        "final states",
        "final outputs",
        "invariant glitches"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<14} {:>12} {:>9} {:>13} {:>14} {:>17}",
            r.benchmark,
            r.transitions_checked,
            r.all_settled,
            r.all_final_states_correct,
            r.all_outputs_correct,
            r.invariant_glitches,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_experiment_produces_five_rows_with_paper_references() {
        let rows = run_table1();
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().all(|r| r.paper.is_some()));
        // The qualitative shape of Table 1: every machine needs a few levels of
        // fsv logic and about five levels of next-state logic.
        for r in &rows {
            assert!(r.measured.fsv_depth >= 2);
            assert!((3..=7).contains(&r.measured.y_depth));
            assert_eq!(
                r.measured.total_depth,
                r.measured.fsv_depth + r.measured.y_depth + 1
            );
        }
        let text = render_table1(&rows);
        assert!(text.contains("train11"));
    }

    #[test]
    fn baseline_experiment_shows_fantom_protecting_hazards() {
        let rows = run_baselines();
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert_eq!(r.fantom_hazard_states, r.baseline_unprotected);
            assert!(r.fantom_total_depth >= r.baseline_total_depth);
        }
        assert!(rows.iter().any(|r| r.fantom_hazard_states > 0));
        assert!(render_baselines(&rows).contains("Huffman"));
    }

    #[test]
    fn ablation_experiment_shows_factoring_cost() {
        let rows = run_ablation();
        for r in &rows {
            assert!(r.factored_total_depth >= r.unfactored_total_depth);
        }
        assert!(render_ablation(&rows).contains("2-level"));
    }

    #[test]
    fn simulation_experiment_settles_and_reaches_correct_states() {
        let rows = run_simulation(&[3]);
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(r.transitions_checked > 0, "{}", r.benchmark);
            assert!(r.all_settled, "{}", r.benchmark);
            assert!(r.all_final_states_correct, "{}", r.benchmark);
        }
    }
}
