//! Naive literal-vector cube reference used by the `cube_kernel` benchmarks.
//!
//! This module re-implements the cube operations exactly as the pre-packed
//! `Vec<Literal>` representation did — one enum comparison per variable —
//! so the benches and the `bench_json` emitter can measure the word-parallel
//! kernel against its honest predecessor without keeping the old type alive
//! in the library.

use fantom_boolean::{Cover, CoverFunction, Cube, Literal};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A product term stored as one literal per variable (the representation the
/// packed kernel replaced).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaiveCube(pub Vec<Literal>);

impl NaiveCube {
    /// Parse from the positional text format.
    ///
    /// # Panics
    ///
    /// Panics on malformed text — bench corpora are generated, never hostile.
    pub fn parse(s: &str) -> Self {
        NaiveCube(
            s.chars()
                .map(|c| Literal::from_char(c).expect("valid cube char"))
                .collect(),
        )
    }

    /// Containment: every non-don't-care position must match.
    pub fn covers(&self, other: &NaiveCube) -> bool {
        self.0.iter().zip(&other.0).all(|(a, b)| match a {
            Literal::DontCare => true,
            _ => a == b,
        })
    }

    /// Intersection, `None` on a 0/1 conflict.
    pub fn intersect(&self, other: &NaiveCube) -> Option<NaiveCube> {
        let mut lits = Vec::with_capacity(self.0.len());
        for (a, b) in self.0.iter().zip(&other.0) {
            let lit = match (a, b) {
                (Literal::DontCare, x) => *x,
                (x, Literal::DontCare) => *x,
                (x, y) if x == y => *x,
                _ => return None,
            };
            lits.push(lit);
        }
        Some(NaiveCube(lits))
    }

    /// Quine–McCluskey adjacency merge.
    pub fn combine_adjacent(&self, other: &NaiveCube) -> Option<NaiveCube> {
        let mut diff_at = None;
        for (i, (a, b)) in self.0.iter().zip(&other.0).enumerate() {
            if a == b {
                continue;
            }
            if *a == Literal::DontCare || *b == Literal::DontCare {
                return None;
            }
            if diff_at.is_some() {
                return None;
            }
            diff_at = Some(i);
        }
        diff_at.map(|i| {
            let mut lits = self.0.clone();
            lits[i] = Literal::DontCare;
            NaiveCube(lits)
        })
    }

    /// Minterm membership by per-literal matching.
    pub fn contains_minterm(&self, m: u64) -> bool {
        let n = self.0.len();
        self.0
            .iter()
            .enumerate()
            .all(|(i, lit)| lit.matches((m >> (n - 1 - i)) & 1 == 1))
    }
}

/// Deterministic seeded stream for generating bench corpora (thin wrapper
/// over the workspace `rand` generator so the algorithm lives in one place).
#[derive(Debug, Clone)]
pub struct CorpusRng(StdRng);

impl CorpusRng {
    /// Seeded construction; the same seed yields the same corpus.
    pub fn new(seed: u64) -> Self {
        CorpusRng(StdRng::seed_from_u64(seed))
    }

    /// Uniform value below `bound`.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.0.gen_range(0..bound)
    }
}

/// Generate `count` random positional-cube strings over `num_vars` variables.
/// Roughly half the positions are don't-cares, mirroring two-level
/// minimization workloads where merged cubes grow steadily freer.
pub fn random_cube_strings(seed: u64, num_vars: usize, count: usize) -> Vec<String> {
    let mut rng = CorpusRng::new(seed);
    (0..count)
        .map(|_| {
            (0..num_vars)
                .map(|_| match rng.below(4) {
                    0 => '0',
                    1 => '1',
                    _ => '-',
                })
                .collect()
        })
        .collect()
}

/// Generate containment-check pairs `(a, b)` mirroring the access pattern of
/// `remove_contained_cubes` / `single_cube_covers`: the cubes of one function
/// are correlated, so `a.covers(b)` either holds (b is a specialization of a)
/// or fails at a uniformly random position — not at position 0 as it would
/// for independent random cubes.
pub fn containment_pair_strings(seed: u64, num_vars: usize, pairs: usize) -> Vec<(String, String)> {
    let mut rng = CorpusRng::new(seed ^ 0x00C0_B375);
    (0..pairs)
        .map(|_| {
            let a: Vec<char> = (0..num_vars)
                .map(|_| match rng.below(2) {
                    0 => '-',
                    _ => {
                        if rng.below(2) == 0 {
                            '0'
                        } else {
                            '1'
                        }
                    }
                })
                .collect();
            // b: specialize every don't-care of a with probability 1/2.
            let mut b = a.clone();
            for c in b.iter_mut() {
                if *c == '-' && rng.below(2) == 0 {
                    *c = if rng.below(2) == 0 { '0' } else { '1' };
                }
            }
            // Half the pairs get one injected mismatch at a random bound
            // position, so the scan fails at uniform depth.
            if rng.below(2) == 0 {
                let bound: Vec<usize> = a
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| **c != '-')
                    .map(|(i, _)| i)
                    .collect();
                if let Some(&v) = bound.get(rng.below(bound.len().max(1) as u64) as usize) {
                    b[v] = if a[v] == '1' { '0' } else { '1' };
                }
            }
            (a.into_iter().collect(), b.into_iter().collect())
        })
        .collect()
}

/// Per-cube minterm membership queries mirroring Petrick gain counting: half
/// the queried minterms lie inside the cube (full-scan cost for a naive
/// representation), half miss at a uniformly random bound position.
pub fn membership_queries(seed: u64, cubes: &[String]) -> Vec<u64> {
    let mut rng = CorpusRng::new(seed ^ 0x4D45_4D42);
    cubes
        .iter()
        .map(|text| {
            let n = text.len();
            let mut m = 0u64;
            for (i, c) in text.chars().enumerate() {
                let bit = match c {
                    '1' => 1,
                    '0' => 0,
                    _ => rng.below(2),
                };
                m |= bit << (n - 1 - i);
            }
            if rng.below(2) == 0 {
                // Miss: flip one bound position.
                let bound: Vec<usize> = text
                    .chars()
                    .enumerate()
                    .filter(|(_, c)| *c != '-')
                    .map(|(i, _)| i)
                    .collect();
                if let Some(&v) = bound.get(rng.below(bound.len().max(1) as u64) as usize) {
                    m ^= 1 << (n - 1 - v);
                }
            }
            m
        })
        .collect()
}

/// Generate adjacent-pair-rich cube strings mirroring the tabulation's merge
/// pass: candidate pairs always share their don't-care structure (the
/// tabulation only compares cubes with identical masks), differing in 0–2
/// **bound** positions. Deciding "exactly one difference" therefore requires
/// scanning the whole cube, which is the cost the packed XOR collapses.
pub fn adjacent_pair_strings(seed: u64, num_vars: usize, pairs: usize) -> Vec<(String, String)> {
    let mut rng = CorpusRng::new(seed ^ 0xD1F7);
    (0..pairs)
        .map(|_| {
            let a: Vec<char> = (0..num_vars)
                .map(|_| match rng.below(3) {
                    0 => '0',
                    1 => '1',
                    _ => '-',
                })
                .collect();
            let bound: Vec<usize> = a
                .iter()
                .enumerate()
                .filter(|(_, c)| **c != '-')
                .map(|(i, _)| i)
                .collect();
            let mut b = a.clone();
            if !bound.is_empty() {
                for _ in 0..rng.below(3) {
                    let v = bound[rng.below(bound.len() as u64) as usize];
                    b[v] = if b[v] == '1' { '0' } else { '1' };
                }
            }
            (a.into_iter().collect(), b.into_iter().collect())
        })
        .collect()
}

/// A random cover of `count` cubes, each binding about `bound` positions —
/// the "union of product terms" shape prime-generation benchmarks use.
pub fn random_cover(seed: u64, num_vars: usize, count: usize, bound: usize) -> Cover {
    let mut rng = CorpusRng::new(seed ^ 0x5EED_C0DE);
    let cubes: Vec<Cube> = (0..count)
        .map(|_| {
            let mut lits = vec![Literal::DontCare; num_vars];
            let mut placed = 0usize;
            while placed < bound {
                let v = rng.below(num_vars as u64) as usize;
                if lits[v] == Literal::DontCare {
                    lits[v] = if rng.below(2) == 1 {
                        Literal::One
                    } else {
                        Literal::Zero
                    };
                    placed += 1;
                }
            }
            Cube::new(lits)
        })
        .collect();
    Cover::from_cubes(num_vars, cubes)
}

/// A deterministic don't-care-heavy incompletely specified function shaped
/// like flow-table synthesis products: `points` on-set minterms, `off_cubes`
/// off-set cubes binding `off_bound` positions each, everything else an
/// implicit don't-care.
pub fn synthetic_cover_function(
    seed: u64,
    num_vars: usize,
    points: usize,
    off_cubes: usize,
    off_bound: usize,
) -> CoverFunction {
    let off = random_cover(seed, num_vars, off_cubes, off_bound);
    let mut rng = CorpusRng::new(seed ^ 0x0FF5_E7F0);
    let space = 1u64 << num_vars;
    let mut on_points: Vec<Cube> = Vec::with_capacity(points);
    while on_points.len() < points {
        let m = rng.below(space);
        if !off.covers_minterm(m) {
            on_points.push(Cube::from_minterm(num_vars, m).expect("in range"));
        }
    }
    let on = Cover::from_cubes(num_vars, on_points);
    CoverFunction::from_on_off(on, off).expect("on points avoid the off cover")
}

/// Mask of every low ("can-be-0") field bit of a packed cube word (the
/// layout constant of `fantom_boolean`, re-derived here for the reference).
const LO_BITS: u64 = 0x5555_5555_5555_5555;

/// Rebuild the espresso-style packed words of a positional-cube string —
/// two bits per variable, fields allocated from the MSB of each word down,
/// padding fields canonically `11` — exactly the `fantom_boolean` layout, so
/// the scalar word loops below and the `fantom_boolean::lane` kernels run
/// over byte-identical inputs.
///
/// # Panics
///
/// Panics on malformed text — bench corpora are generated, never hostile.
pub fn packed_words(s: &str) -> Vec<u64> {
    let n = s.chars().count();
    let mut out = vec![!0u64; n.div_ceil(32).max(1)];
    for (v, c) in s.chars().enumerate() {
        let field: u64 = match c {
            '0' => 0b01,
            '1' => 0b10,
            '-' => 0b11,
            other => panic!("invalid cube char {other:?}"),
        };
        let shift = 62 - 2 * (v % 32);
        out[v / 32] = (out[v / 32] & !(0b11u64 << shift)) | (field << shift);
    }
    out
}

/// Pre-lane scalar containment loop (`b & !a == 0` word by word with early
/// exit) — the exact traversal `Cube::covers` used before the lane kernels.
#[inline]
pub fn scalar_cube_covers(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).all(|(&x, &y)| y & !x == 0)
}

/// Pre-lane scalar conflict scan — the word loop `Cube::intersect` used to
/// detect an empty (`00`) field before the lane kernels.
#[inline]
pub fn scalar_cube_has_conflict(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).any(|(&x, &y)| {
        let t = x & y;
        !(t | (t >> 1)) & LO_BITS != 0
    })
}

/// Pre-lane scalar bucket-AND (`cand &= dc`, any-accumulated) — the
/// free-variable constraint loop of `CoverIndex::constrain` before the lane
/// kernels.
#[inline]
pub fn scalar_and_into_any(dst: &mut [u64], src: &[u64]) -> u64 {
    let mut any = 0u64;
    for (d, &s) in dst.iter_mut().zip(src) {
        *d &= s;
        any |= *d;
    }
    any
}

/// Pre-lane scalar bound-variable bucket-AND (`cand &= same | dc`,
/// any-accumulated) — the other arm of `CoverIndex::constrain`.
#[inline]
pub fn scalar_and_or2_into_any(dst: &mut [u64], a: &[u64], b: &[u64]) -> u64 {
    let mut any = 0u64;
    for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
        *d &= x | y;
        any |= *d;
    }
    any
}

/// The dense `2^n · n` static-hazard adjacency walk the cube-pair-wise
/// region algorithm replaced, kept here as the benchmark oracle. Returns the
/// hazardous pair count.
pub fn naive_static_hazard_count(cover: &Cover) -> usize {
    let n = cover.num_vars();
    let space = 1u64 << n;
    let full_mask: u64 = space - 1;
    let mut count = 0usize;
    for m in 0..space {
        for var in 0..n {
            let bit = 1u64 << (n - 1 - var);
            if m & bit != 0 {
                continue;
            }
            let other = m | bit;
            if !cover.covers_minterm(m) || !cover.covers_minterm(other) {
                continue;
            }
            let pair = Cube::from_mask_value(n, full_mask & !bit, m);
            if !cover.single_cube_covers(&pair) {
                count += 1;
            }
        }
    }
    count
}

/// The pre-index candidate-growth loop of the Step-3 assignment engine,
/// retained verbatim as the differential oracle and micro-benchmark
/// reference: per seed, two full wrap-around `try_absorb` passes over the
/// dichotomy list, a full separation rescan to compute the candidate's
/// coverage set, and the old rotation seed orderings (variants ≥ 2 rotate by
/// a prime offset — provably duplicates of variant 0, which is exactly the
/// waste the indexed engine's stride orderings fixed). Returns the
/// deduplicated `(merged dichotomy, covers)` pool in generation order.
pub fn scalar_candidate_growth(
    dichotomies: &[fantom_assign::Dichotomy],
    seed_orderings: usize,
    max_candidates: usize,
) -> Vec<(fantom_assign::Dichotomy, fantom_boolean::MintermSet)> {
    use fantom_boolean::MintermSet;

    fn seed_order(num: usize, variant: usize) -> Vec<usize> {
        match variant {
            0 => (0..num).collect(),
            1 => (0..num).rev().collect(),
            v => {
                let offset = (v * 7919) % num.max(1);
                (0..num).map(|i| (i + offset) % num).collect()
            }
        }
    }

    let mut seen: fantom_boolean::collections::HashSet<fantom_assign::Dichotomy> =
        Default::default();
    let mut candidates = Vec::new();
    'orderings: for variant in 0..seed_orderings.max(1) {
        let order = seed_order(dichotomies.len(), variant);
        for (pos, &seed) in order.iter().enumerate() {
            if candidates.len() >= max_candidates {
                break 'orderings;
            }
            let mut merged = dichotomies[seed].clone();
            for _ in 0..2 {
                for &j in order[pos..].iter().chain(&order[..pos]) {
                    if j != seed {
                        merged.try_absorb(&dichotomies[j]);
                    }
                }
            }
            if seen.insert(merged.clone()) {
                let ones = merged.right();
                let covers = MintermSet::from_minterms(
                    dichotomies.len() as u64,
                    dichotomies
                        .iter()
                        .enumerate()
                        .filter(|(_, d)| d.separated_by(ones))
                        .map(|(i, _)| i as u64),
                );
                candidates.push((merged, covers));
            }
        }
    }
    candidates
}

/// The rescan-per-pick greedy set cover the lazy-max heap replaced, retained
/// verbatim: every selection scans all candidate coverage sets against the
/// uncovered dichotomies (ties to the earlier index).
pub fn scalar_greedy_cover(covers: &[fantom_boolean::MintermSet], num: usize) -> Vec<usize> {
    let mut uncovered = fantom_boolean::MintermSet::from_minterms(num as u64, 0..num as u64);
    let mut chosen: Vec<usize> = Vec::new();
    while !uncovered.is_empty() {
        let mut best: Option<(usize, usize)> = None;
        for (i, c) in covers.iter().enumerate() {
            let gain = c.intersection_count(&uncovered);
            if gain > 0 && best.map_or(true, |(_, g)| gain > g) {
                best = Some((i, gain));
            }
        }
        let Some((pick, _)) = best else { break };
        uncovered.subtract(&covers[pick]);
        chosen.push(pick);
    }
    chosen
}
