//! Regenerate Table 1 of the paper: `fsv` depth, next-state depth and total
//! depth for every benchmark of the evaluation suite, side by side with the
//! values the paper reports.
//!
//! Run with `cargo run -p fantom-bench --bin table1 --release`.

fn main() {
    println!("Table 1 — logic depths of the synthesized FANTOM machines");
    println!("(p = value reported in the paper, m = measured by this reproduction)\n");
    let rows = fantom_bench::run_table1();
    println!("{}", fantom_bench::render_table1(&rows));
    println!(
        "Paper note (Section 6): SEANCE took about four seconds of CPU time per example on a \
         VAXStation 3100; the `synth time` column above is the equivalent measurement on this \
         machine."
    );
}
