//! Run every experiment of the reproduction (E1–E5 in `DESIGN.md`) and print a
//! complete report. The output of this binary is the source of the numbers in
//! `EXPERIMENTS.md`.
//!
//! Run with `cargo run -p fantom-bench --bin experiments --release`.

fn main() {
    println!("================================================================");
    println!("E1 — Table 1: logic depths (paper / measured)");
    println!("================================================================");
    let table1 = fantom_bench::run_table1();
    println!("{}", fantom_bench::render_table1(&table1));

    println!("================================================================");
    println!("E2 — Synthesis time (paper: ~4 s per example on a VAXStation 3100)");
    println!("================================================================");
    for row in &table1 {
        println!("{:<14} {:.2?}", row.measured.benchmark, row.elapsed);
    }
    println!();

    println!("================================================================");
    println!("E3 — Ablation: hazard factoring on vs. off");
    println!("================================================================");
    println!(
        "{}",
        fantom_bench::render_ablation(&fantom_bench::run_ablation())
    );

    println!("================================================================");
    println!("E4 — Baselines: FANTOM vs. Huffman vs. STG expansion");
    println!("================================================================");
    println!(
        "{}",
        fantom_bench::render_baselines(&fantom_bench::run_baselines())
    );

    println!("================================================================");
    println!("E5 — Simulation validation (random delays, skewed input edges)");
    println!("================================================================");
    println!(
        "{}",
        fantom_bench::render_simulation(&fantom_bench::run_simulation(&[1, 2, 3]))
    );
}
