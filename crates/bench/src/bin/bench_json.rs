//! Perf-trajectory emitter: times the cube-kernel micro operations (packed
//! vs. the naive literal-vector reference) and the end-to-end synthesis of
//! every paper benchmark, then writes the results as JSON so future PRs can
//! track the perf trajectory.
//!
//! Run with `cargo run -p fantom-bench --release --bin bench_json [OUT.json]`
//! (default output: `BENCH_pr1.json` in the current directory).

use std::fmt::Write as _;
use std::time::Instant;

use fantom_bench::reference::{
    adjacent_pair_strings, containment_pair_strings, membership_queries, random_cube_strings,
    NaiveCube,
};
use fantom_bench::{synthesize_benchmark, table1_options};
use fantom_boolean::Cube;
use seance::{synthesize, table1_row};

const PAIRS: usize = 512;
const NUM_VARS: usize = 24;

/// Time `op` until at least ~50 ms have elapsed; returns mean ns per call.
fn time_ns(mut op: impl FnMut() -> usize) -> f64 {
    // Warm-up and calibration pass.
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        let mut sink = 0usize;
        for _ in 0..iters {
            sink = sink.wrapping_add(op());
        }
        let elapsed = start.elapsed();
        std::hint::black_box(sink);
        if elapsed.as_millis() >= 50 || iters >= 1 << 24 {
            return elapsed.as_nanos() as f64 / iters as f64;
        }
        iters = iters.saturating_mul(4);
    }
}

struct MicroResult {
    name: &'static str,
    packed_ns: f64,
    naive_ns: f64,
}

impl MicroResult {
    fn speedup(&self) -> f64 {
        self.naive_ns / self.packed_ns
    }
}

fn micro_results() -> Vec<MicroResult> {
    // Workload-shaped corpora: containment pairs mirror the correlated cubes
    // of one function (specializations plus uniform-depth mismatches), merge
    // pairs mirror the tabulation's near-identical cube pairs, membership
    // queries hit the cube half the time like Petrick gain counting.
    let pairs = containment_pair_strings(0xBEEF, NUM_VARS, PAIRS);
    let packed: Vec<(Cube, Cube)> = pairs
        .iter()
        .map(|(a, b)| (Cube::parse(a).unwrap(), Cube::parse(b).unwrap()))
        .collect();
    let naive: Vec<(NaiveCube, NaiveCube)> = pairs
        .iter()
        .map(|(a, b)| (NaiveCube::parse(a), NaiveCube::parse(b)))
        .collect();
    let adj = adjacent_pair_strings(0xFEED, NUM_VARS, PAIRS);
    let packed_adj: Vec<(Cube, Cube)> = adj
        .iter()
        .map(|(a, b)| (Cube::parse(a).unwrap(), Cube::parse(b).unwrap()))
        .collect();
    let naive_adj: Vec<(NaiveCube, NaiveCube)> = adj
        .iter()
        .map(|(a, b)| (NaiveCube::parse(a), NaiveCube::parse(b)))
        .collect();
    let member_strings = random_cube_strings(0xBEEF, NUM_VARS, PAIRS);
    let queries = membership_queries(0xBEEF, &member_strings);
    let member_packed: Vec<Cube> = member_strings
        .iter()
        .map(|s| Cube::parse(s).unwrap())
        .collect();
    let member_naive: Vec<NaiveCube> = member_strings.iter().map(|s| NaiveCube::parse(s)).collect();

    vec![
        MicroResult {
            name: "containment",
            packed_ns: time_ns(|| packed.iter().filter(|(a, b)| a.covers(b)).count()),
            naive_ns: time_ns(|| naive.iter().filter(|(a, b)| a.covers(b)).count()),
        },
        MicroResult {
            name: "merge_adjacent",
            packed_ns: time_ns(|| {
                packed_adj
                    .iter()
                    .filter(|(a, b)| a.combine_adjacent(b).is_some())
                    .count()
            }),
            naive_ns: time_ns(|| {
                naive_adj
                    .iter()
                    .filter(|(a, b)| a.combine_adjacent(b).is_some())
                    .count()
            }),
        },
        MicroResult {
            name: "intersection",
            packed_ns: time_ns(|| {
                packed
                    .iter()
                    .filter(|(a, b)| a.intersect(b).is_some())
                    .count()
            }),
            naive_ns: time_ns(|| {
                naive
                    .iter()
                    .filter(|(a, b)| a.intersect(b).is_some())
                    .count()
            }),
        },
        MicroResult {
            name: "minterm_membership",
            packed_ns: time_ns(|| {
                member_packed
                    .iter()
                    .zip(&queries)
                    .filter(|(a, &m)| a.contains_minterm(m))
                    .count()
            }),
            naive_ns: time_ns(|| {
                member_naive
                    .iter()
                    .zip(&queries)
                    .filter(|(a, &m)| a.contains_minterm(m))
                    .count()
            }),
        },
    ]
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr1.json".to_string());

    println!("cube-kernel micro benchmarks ({PAIRS} pairs, {NUM_VARS} vars, per-corpus ns):");
    let micros = micro_results();
    for m in &micros {
        println!(
            "  {:<20} packed {:>12.1} ns   naive {:>12.1} ns   speedup {:>6.2}x",
            m.name,
            m.packed_ns,
            m.naive_ns,
            m.speedup()
        );
    }

    println!("\nend-to-end synthesis (table1 options):");
    let options = table1_options();
    let mut synth: Vec<(String, f64, usize, usize)> = Vec::new();
    for table in fantom_flow::benchmarks::paper_suite() {
        // Warm once, then time a few runs.
        let result = synthesize_benchmark(&table);
        let row = table1_row(&result);
        let start = Instant::now();
        let runs = 5;
        for _ in 0..runs {
            std::hint::black_box(synthesize(&table, &options).expect("synthesis succeeds"));
        }
        let ms = start.elapsed().as_secs_f64() * 1e3 / f64::from(runs);
        println!(
            "  {:<14} {:>9.3} ms   fsv depth {}   total depth {}",
            table.name(),
            ms,
            row.fsv_depth,
            row.total_depth
        );
        synth.push((table.name().to_string(), ms, row.fsv_depth, row.total_depth));
    }

    let mut json = String::new();
    json.push_str("{\n  \"pr\": 1,\n  \"kernel\": \"bit-packed cube (2 bits/var, u64 words)\",\n");
    json.push_str("  \"cube_kernel_micro\": {\n");
    for (i, m) in micros.iter().enumerate() {
        let _ = writeln!(
            json,
            "    \"{}\": {{ \"packed_ns\": {:.1}, \"naive_ns\": {:.1}, \"speedup\": {:.2} }}{}",
            m.name,
            m.packed_ns,
            m.naive_ns,
            m.speedup(),
            if i + 1 < micros.len() { "," } else { "" }
        );
    }
    json.push_str("  },\n  \"synthesis_end_to_end\": {\n");
    for (i, (name, ms, fsv_depth, total_depth)) in synth.iter().enumerate() {
        let _ = writeln!(
            json,
            "    \"{name}\": {{ \"ms\": {ms:.3}, \"fsv_depth\": {fsv_depth}, \"total_depth\": {total_depth} }}{}",
            if i + 1 < synth.len() { "," } else { "" }
        );
    }
    json.push_str("  }\n}\n");

    std::fs::write(&out_path, &json).expect("write bench JSON");
    println!("\nwrote {out_path}");
}
