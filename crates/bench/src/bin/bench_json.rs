//! Perf-trajectory emitter and CI regression gate.
//!
//! Measures three layers and writes the results as a **flat** JSON object
//! (dotted keys, one metric per line) so the file doubles as a machine-
//! readable baseline:
//!
//! 1. the cube-kernel micro operations (packed vs the naive literal-vector
//!    reference, PR 1 continuity),
//! 2. the sparse cover-based engine vs the dense bitset engine: full prime
//!    generation, minimization and static-hazard analysis at n = 16/20/24
//!    (dense entries that would require enumerating the `2^n` space are
//!    reported as `*.dense_infeasible = 1`), plus the indexed Step 5/7
//!    consensus engines on the same corpora (`consensus.n*.{cover,on_pairs}_ms`)
//!    and a bounded dc-dense closure variant (`consensus.n16.cover_dc_ms`),
//! 3. Step-2 state reduction on the large suite: bounded (pivoted, capped
//!    Bron–Kerbosch) reduction time plus compatible / class counts
//!    (`reduce.*`), and the exact reducer over the small corpus,
//! 4. Step-3 state assignment: the packed Tracey engine on the small corpus
//!    (default budgets) and the unreduced large suite (bounded budgets) —
//!    `assign.*.ms` per-machine wall time and `assign.*.vars` code widths,
//! 5. Step-7 hazard factoring on the unreduced large suite:
//!    `factor.*.ms` (threaded per-bit consensus fan-out, the default) and
//!    `factor.*.serial_ms` (the `parallel_y = false` knob), with the spec /
//!    hazard / Step-6 work excluded from the timed region,
//! 6. end-to-end synthesis: the paper suite through the dense pipeline and
//!    the large 40-state suite through the sparse pipeline, both unreduced
//!    (`e2e.*`, the PR 2 stress shape) and with bounded Step-2 reduction
//!    (`e2e_reduced.*`),
//! 7. the batch synthesis service: a sequential `synthesize_sparse` loop
//!    baseline vs [`seance::synthesize_many`] throughput at batch sizes
//!    1/64/4096 over a relabeling-heavy mixed corpus
//!    (`batch.{seq,throughput}.*.machines_per_s`), plus cold- vs warm-cache
//!    batch times on a persistent service (`batch.cache.{cold,hit}_ms`),
//! 8. the event-driven simulator scheduler: identical glitchy inertial
//!    workloads through the indexed-queue simulator and the retired
//!    `BinaryHeap` scheduler (`sim.events_per_s.{indexed,heap}` measured in
//!    *applied* events, and `sim.speedup`),
//! 9. Monte-Carlo hazard-validation campaigns: 1000 sampled delay
//!    assignments per machine over the full corpus (`campaign.*.ms`,
//!    `campaign.*.events`), asserting every report comes back clean.
//! 10. the generated-machine grid: a 3×3 (state count × dc-density) lattice
//!     of seeded `fantom_flow::generate` machines — the same lattice the
//!     checked-in `benchmarks/` directory pins — through the sparse pipeline
//!     (`grid.*.ms` wall time plus `grid.*.{cubes,depth}` gate metrics), so
//!     the perf gate covers shape space between the hand-written corpus
//!     points.
//! 11. the 256-bit lane kernels: `fantom_boolean::lane` slice kernels vs the
//!     pre-lane scalar word loops they replaced, over byte-identical packed
//!     word arrays at 32/64/128/256-variable widths
//!     (`kernel.lane.{containment,intersect}.v*`) plus `CoverIndex`-style
//!     bucket-AND sweeps at 2048/16384-cube bucket widths
//!     (`kernel.lane.bucket_{and,free}.c*`).
//! 12. the Step-3 indexed assignment engine: the shared-dichotomy-index
//!     candidate grower and the lazy-max greedy pick vs the retained scalar
//!     references (`fantom_bench::reference`) on the unreduced large suite
//!     (`assign.index.*.{grow_ms,grow_ref_ms,greedy_ns,greedy_ref_ns}`) at
//!     the like-for-like configuration where both engines provably enumerate
//!     identical candidate pools — equality is asserted on every run — plus
//!     assignment-only time and code width over the item-10 generated grid
//!     (`assign.s{states}.d{density}.{ms,vars}`).
//!
//! Usage:
//!
//! ```text
//! bench_json [OUT.json] [--baseline BASELINE.json]
//! ```
//!
//! With `--baseline`, every `*_ns` / `*_ms` metric present in both files is
//! compared; the process exits non-zero if any current value exceeds the
//! baseline by more than the 2.5× regression threshold (6× for all-core
//! `campaign.*` wall times, with a small absolute floor so sub-microsecond
//! noise cannot trip the gate).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

use fantom_bench::reference::{
    adjacent_pair_strings, containment_pair_strings, membership_queries, naive_static_hazard_count,
    packed_words, random_cover, random_cube_strings, scalar_and_into_any, scalar_and_or2_into_any,
    scalar_cube_covers, scalar_cube_has_conflict, synthetic_cover_function, NaiveCube,
};
use fantom_bench::table1_options;
use fantom_boolean::{lane, quine, recursive, Cube, Function};
use fantom_flow::benchmarks;
use fantom_minimize::{
    compatibility, maximal_compatibles_bounded, reduce, reduce_with_options, ReductionOptions,
};
use seance::{synthesize, synthesize_sparse, SynthesisOptions};

const PAIRS: usize = 512;
const NUM_VARS: usize = 24;

/// Regression threshold for the CI gate. Deliberately loose: the baseline is
/// measured on whatever machine last refreshed `BENCH_baseline.json`, so the
/// gate must absorb cross-machine scalar-speed differences and shared-runner
/// noise while still catching algorithmic regressions (which on this code
/// base are typically 5–1000x, not 2.5x).
const REGRESSION_RATIO: f64 = 2.5;
/// Looser threshold for `campaign.*` wall times: the campaign driver
/// saturates every core through the worker pool, so runner contention alone
/// swings these metrics ~3x run-to-run. Real regressions in this layer
/// (event-budget blowups, scheduler degradation) are 10x+, and correctness
/// is gated separately — `bench_json` aborts if any campaign is not clean.
const CAMPAIGN_REGRESSION_RATIO: f64 = 6.0;
/// Absolute floors below which a regression is ignored: sub-microsecond /
/// sub-millisecond metrics jitter far more than 2.5x on shared CI runners.
const FLOOR_NS: f64 = 500.0;
const FLOOR_MS: f64 = 1.0;

/// Time `op` until at least ~50 ms have elapsed; returns mean ns per call.
fn time_ns(mut op: impl FnMut() -> usize) -> f64 {
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        let mut sink = 0usize;
        for _ in 0..iters {
            sink = sink.wrapping_add(op());
        }
        let elapsed = start.elapsed();
        std::hint::black_box(sink);
        if elapsed.as_millis() >= 50 || iters >= 1 << 24 {
            return elapsed.as_nanos() as f64 / iters as f64;
        }
        iters = iters.saturating_mul(4);
    }
}

/// Wall-clock one run of `op` in milliseconds, returning its result size.
fn time_ms_once(op: impl FnOnce() -> usize) -> (f64, usize) {
    let start = Instant::now();
    let size = std::hint::black_box(op());
    (start.elapsed().as_secs_f64() * 1e3, size)
}

fn micro_metrics(out: &mut BTreeMap<String, f64>) {
    let pairs = containment_pair_strings(0xBEEF, NUM_VARS, PAIRS);
    let packed: Vec<(Cube, Cube)> = pairs
        .iter()
        .map(|(a, b)| (Cube::parse(a).unwrap(), Cube::parse(b).unwrap()))
        .collect();
    let naive: Vec<(NaiveCube, NaiveCube)> = pairs
        .iter()
        .map(|(a, b)| (NaiveCube::parse(a), NaiveCube::parse(b)))
        .collect();
    let adj = adjacent_pair_strings(0xFEED, NUM_VARS, PAIRS);
    let packed_adj: Vec<(Cube, Cube)> = adj
        .iter()
        .map(|(a, b)| (Cube::parse(a).unwrap(), Cube::parse(b).unwrap()))
        .collect();
    let naive_adj: Vec<(NaiveCube, NaiveCube)> = adj
        .iter()
        .map(|(a, b)| (NaiveCube::parse(a), NaiveCube::parse(b)))
        .collect();
    let member_strings = random_cube_strings(0xBEEF, NUM_VARS, PAIRS);
    let queries = membership_queries(0xBEEF, &member_strings);
    let member_packed: Vec<Cube> = member_strings
        .iter()
        .map(|s| Cube::parse(s).unwrap())
        .collect();
    let member_naive: Vec<NaiveCube> = member_strings.iter().map(|s| NaiveCube::parse(s)).collect();

    let mut put = |name: &str, packed_ns: f64, naive_ns: f64| {
        println!(
            "  micro {name:<20} packed {packed_ns:>10.1} ns   naive {naive_ns:>10.1} ns   {:>6.2}x",
            naive_ns / packed_ns
        );
        out.insert(format!("micro.{name}.packed_ns"), packed_ns);
        out.insert(format!("micro.{name}.naive_ns"), naive_ns);
        out.insert(format!("micro.{name}.speedup"), naive_ns / packed_ns);
    };

    put(
        "containment",
        time_ns(|| packed.iter().filter(|(a, b)| a.covers(b)).count()),
        time_ns(|| naive.iter().filter(|(a, b)| a.covers(b)).count()),
    );
    put(
        "merge_adjacent",
        time_ns(|| {
            packed_adj
                .iter()
                .filter(|(a, b)| a.combine_adjacent(b).is_some())
                .count()
        }),
        time_ns(|| {
            naive_adj
                .iter()
                .filter(|(a, b)| a.combine_adjacent(b).is_some())
                .count()
        }),
    );
    put(
        "intersection",
        time_ns(|| {
            packed
                .iter()
                .filter(|(a, b)| a.intersect(b).is_some())
                .count()
        }),
        time_ns(|| {
            naive
                .iter()
                .filter(|(a, b)| a.intersect(b).is_some())
                .count()
        }),
    );
    put(
        "minterm_membership",
        time_ns(|| {
            member_packed
                .iter()
                .zip(&queries)
                .filter(|(a, &m)| a.contains_minterm(m))
                .count()
        }),
        time_ns(|| {
            member_naive
                .iter()
                .zip(&queries)
                .filter(|(a, &m)| a.contains_minterm(m))
                .count()
        }),
    );
}

/// Deterministic xorshift64 word stream for bucket-bitset corpora.
fn xorshift_words(seed: u64, len: usize) -> Vec<u64> {
    let mut s = seed | 1;
    (0..len)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        })
        .collect()
}

/// `fantom_boolean::lane` slice kernels vs the pre-lane scalar word loops
/// they replaced, over byte-identical word arrays. Widths cover the shape
/// space of the kernels: 32 vars = 1 word (pure scalar tail, the overhead
/// floor), 64 = 2 words (still all tail), 128 = 4 words (exactly one full
/// lane), 256 = 8 words (two lanes). The bucket-AND sweeps reproduce the
/// `CoverIndex::constrain` hot loop — `cand &= same | dc` for bound
/// variables, `cand &= dc` for free ones — over 16-variable constraint
/// chains on 2048- and 16384-cube bucket bitsets.
fn lane_metrics(out: &mut BTreeMap<String, f64>) {
    // 8x the micro-suite pair count: a corpus small enough to stay cache-hot
    // but large enough that the branch predictor cannot memorize the scalar
    // loops' per-word exit pattern across timing iterations, which would
    // flatter the word-at-a-time baseline.
    const LANE_PAIRS: usize = 32 * PAIRS;
    let mut put = |name: &str, lane_ns: f64, scalar_ns: f64| {
        println!(
            "  lane {name:<20} lane {lane_ns:>10.1} ns   scalar {scalar_ns:>10.1} ns   {:>6.2}x",
            scalar_ns / lane_ns
        );
        out.insert(format!("kernel.lane.{name}.lane_ns"), lane_ns);
        out.insert(format!("kernel.lane.{name}.scalar_ns"), scalar_ns);
        out.insert(format!("kernel.lane.{name}.speedup"), scalar_ns / lane_ns);
    };

    for &vars in &[32usize, 64, 128, 256] {
        let pairs: Vec<(Vec<u64>, Vec<u64>)> =
            containment_pair_strings(0xD1CE ^ vars as u64, vars, LANE_PAIRS)
                .iter()
                .map(|(a, b)| (packed_words(a), packed_words(b)))
                .collect();
        put(
            &format!("containment.v{vars}"),
            time_ns(|| {
                pairs
                    .iter()
                    .filter(|(a, b)| lane::cube_covers(a, b))
                    .count()
            }),
            time_ns(|| {
                pairs
                    .iter()
                    .filter(|(a, b)| scalar_cube_covers(a, b))
                    .count()
            }),
        );
        put(
            &format!("intersect.v{vars}"),
            time_ns(|| {
                pairs
                    .iter()
                    .filter(|(a, b)| lane::cube_has_conflict(a, b))
                    .count()
            }),
            time_ns(|| {
                pairs
                    .iter()
                    .filter(|(a, b)| scalar_cube_has_conflict(a, b))
                    .count()
            }),
        );
    }

    const CHAIN_VARS: usize = 16;
    for &cubes in &[2048usize, 16384] {
        let words = cubes / 64;
        let buckets: Vec<(Vec<u64>, Vec<u64>)> = (0..CHAIN_VARS)
            .map(|v| {
                let seed = 0xB1C5 ^ (cubes as u64) << 8 ^ v as u64;
                (
                    xorshift_words(seed, words),
                    xorshift_words(seed.rotate_left(17), words),
                )
            })
            .collect();
        // Repeated application converges `cand` after the first sweep, but
        // every sweep still performs the identical loads, stores and masks —
        // and neither loop under test short-circuits — so reusing one
        // candidate buffer keeps the measurement honest without a per-call
        // reset. Each side gets its own buffer from the same initial state.
        let mut cand = vec![!0u64; words];
        let mut cand_scalar = cand.clone();
        put(
            &format!("bucket_and.c{cubes}"),
            time_ns(|| {
                let mut any = 0u64;
                for (same, dc) in &buckets {
                    any |= lane::and_or2_into_any(&mut cand, same, dc);
                }
                any as usize
            }),
            time_ns(|| {
                let mut any = 0u64;
                for (same, dc) in &buckets {
                    any |= scalar_and_or2_into_any(&mut cand_scalar, same, dc);
                }
                any as usize
            }),
        );
        let mut free = vec![!0u64; words];
        let mut free_scalar = free.clone();
        put(
            &format!("bucket_free.c{cubes}"),
            time_ns(|| {
                let mut any = 0u64;
                for (_, dc) in &buckets {
                    any |= lane::and_into_any(&mut free, dc);
                }
                any as usize
            }),
            time_ns(|| {
                let mut any = 0u64;
                for (_, dc) in &buckets {
                    any |= scalar_and_into_any(&mut free_scalar, dc);
                }
                any as usize
            }),
        );
    }
}

/// Sparse-vs-dense engine comparison at n = 16/20/24.
fn engine_metrics(out: &mut BTreeMap<String, f64>) {
    for &n in &[16usize, 20, 24] {
        // --- Full prime generation on a completely specified union of cubes.
        let cover = random_cover(0xAB5E * n as u64, n, 20, n / 2);
        let (sparse_ms, sparse_primes) = time_ms_once(|| recursive::complete_sum(&cover).len());
        out.insert(format!("engine.primes.n{n}.sparse_ms"), sparse_ms);
        if n <= 16 {
            // The dense tabulation starts from every on ∪ dc minterm — only
            // feasible while 2^n is small.
            let f = Function::from_cover(&cover, None).expect("within dense limit");
            let (dense_ms, dense_primes) = time_ms_once(|| quine::prime_implicants(&f).len());
            assert_eq!(sparse_primes, dense_primes, "prime sets disagree at n={n}");
            out.insert(format!("engine.primes.n{n}.dense_ms"), dense_ms);
            println!(
                "  primes n={n}: sparse {sparse_ms:>9.2} ms   dense {dense_ms:>9.2} ms   ({sparse_primes} primes)"
            );
        } else {
            out.insert(format!("engine.primes.n{n}.dense_infeasible"), 1.0);
            println!(
                "  primes n={n}: sparse {sparse_ms:>9.2} ms   dense infeasible (2^{n} tabulation)   ({sparse_primes} primes)"
            );
        }

        // --- Minimization of a dc-heavy incompletely specified function.
        let cf = synthetic_cover_function(0xD0_0D + n as u64, n, 160, 24, n - 8);
        let (sparse_ms, sparse_cubes) = time_ms_once(|| cf.minimize().cube_count());
        out.insert(format!("engine.minimize.n{n}.sparse_ms"), sparse_ms);
        if n <= fantom_boolean::MAX_DENSE_VARS {
            let f = cf.to_function().expect("within dense limit");
            let (dense_ms, dense_cubes) =
                time_ms_once(|| fantom_boolean::minimize_function(&f).cube_count());
            out.insert(format!("engine.minimize.n{n}.dense_ms"), dense_ms);
            println!(
                "  minimize n={n}: sparse {sparse_ms:>9.2} ms ({sparse_cubes} cubes)   dense {dense_ms:>9.2} ms ({dense_cubes} cubes)"
            );
        }

        // --- Static-hazard analysis of the minimized cover.
        let cover = cf.minimize();
        let (sparse_ms, sparse_regions) =
            time_ms_once(|| fantom_boolean::hazard::static_hazard_regions(&cover).len());
        out.insert(format!("engine.hazard.n{n}.sparse_ms"), sparse_ms);
        if n <= 20 {
            let (dense_ms, dense_pairs) = time_ms_once(|| naive_static_hazard_count(&cover));
            out.insert(format!("engine.hazard.n{n}.dense_ms"), dense_ms);
            println!(
                "  hazard n={n}: sparse {sparse_ms:>9.2} ms ({sparse_regions} regions)   dense {dense_ms:>9.2} ms ({dense_pairs} pairs)"
            );
        } else {
            out.insert(format!("engine.hazard.n{n}.dense_infeasible"), 1.0);
            println!(
                "  hazard n={n}: sparse {sparse_ms:>9.2} ms ({sparse_regions} regions)   dense infeasible (2^{n}·{n} walk)"
            );
        }

        // --- Indexed consensus augmentation (the Step 7 primitives).
        // The full closure (`add_consensus_terms_cover`) runs on the
        // completely specified prime-generation cover, where the closure is
        // bounded by the prime count; dc-heavy inputs belong to the targeted
        // on-pairs variant (closing a dc-heavy function's every covered
        // adjacency enumerates an exponentially larger prime set — the very
        // reason the sparse pipeline uses on-pair augmentation).
        let spec_cover = random_cover(0xAB5E * n as u64, n, 20, n / 2);
        let spec_off = recursive::complement(&spec_cover);
        let (cover_ms, cover_terms) = time_ms_once(|| {
            fantom_boolean::hazard::add_consensus_terms_cover(&spec_off, &spec_cover).cube_count()
        });
        out.insert(format!("consensus.n{n}.cover_ms"), cover_ms);
        let (pairs_ms, pairs_terms) = time_ms_once(|| {
            fantom_boolean::hazard::add_consensus_terms_on_pairs(
                cf.on_cover(),
                cf.off_cover(),
                &cover,
            )
            .cube_count()
        });
        out.insert(format!("consensus.n{n}.on_pairs_ms"), pairs_ms);
        println!(
            "  consensus n={n}: cover {cover_ms:>9.2} ms ({cover_terms} terms)   on-pairs {pairs_ms:>9.2} ms ({pairs_terms} terms)"
        );
    }

    // --- Dc-dense cover-closure variant. The full closure on a dc-heavy
    // function is exactly the shape Step 7 avoids (see above), so this
    // metric pins its cost on a deliberately *bounded* instance instead of
    // skipping it. The closure's work is bounded by the primes of on ∪ dc it
    // can still add, and the off cover is the knob that shrinks that set:
    // here 64 off cubes bind only 5 of 16 positions each, so the off-set is
    // wide, the don't-care fraction drops, and the closure terminates in
    // tens of milliseconds (~400 terms). The knob is *sharp* — at
    // `off_bound = 6` the same shape already runs for minutes, and the
    // `points = 160, off_bound = n - 8` minimization corpus above blows its
    // prime set up exponentially — which is precisely why the pipeline's
    // production path is the targeted on-pairs variant. Kept at n = 16 only.
    let n = 16usize;
    let dc_cf = synthetic_cover_function(0xDCDC, n, 24, 64, 5);
    let dc_base = dc_cf.minimize();
    let (dc_ms, dc_terms) = time_ms_once(|| {
        fantom_boolean::hazard::add_consensus_terms_cover(dc_cf.off_cover(), &dc_base).cube_count()
    });
    out.insert(format!("consensus.n{n}.cover_dc_ms"), dc_ms);
    out.insert(format!("consensus.n{n}.cover_dc_terms"), dc_terms as f64);
    println!("  consensus n={n}: dc-dense cover closure {dc_ms:>9.2} ms ({dc_terms} terms)");
}

/// Batch synthesis service (the `seance::service` layer): sequential-loop
/// baseline, `synthesize_many` throughput at three batch sizes, and cache
/// temperature on a persistent service. The mixed corpus is the
/// resubmission-heavy traffic the service is built for — the small corpus
/// cycled with fresh random state/input/output relabelings — so throughput
/// reflects the worker pool *and* the canonical-form cache together.
fn batch_metrics(out: &mut BTreeMap<String, f64>) {
    use fantom_flow::canonical::relabel;
    use fantom_flow::FlowTable;
    use seance::{synthesize_many, ServiceOptions, SynthesisService};

    fn permutation(rng: &mut u64, n: usize) -> Vec<usize> {
        let mut perm: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            *rng ^= *rng << 13;
            *rng ^= *rng >> 7;
            *rng ^= *rng << 17;
            let j = (*rng % (i as u64 + 1)) as usize;
            perm.swap(i, j);
        }
        perm
    }

    let corpus = benchmarks::all();
    let mut rng = 0xBA7C_5EED_u64;
    let mut batch = |size: usize| -> Vec<FlowTable> {
        (0..size)
            .map(|i| {
                let t = &corpus[i % corpus.len()];
                let sm = permutation(&mut rng, t.num_states());
                let im = permutation(&mut rng, t.num_inputs());
                let om = permutation(&mut rng, t.num_outputs());
                relabel(t, &sm, &im, &om, &format!("{}_{i}", t.name()))
            })
            .collect()
    };
    let options = ServiceOptions::default();

    // Baseline: a plain sequential synthesize_sparse loop over the batch —
    // what a caller without the service layer would write.
    let seq_batch = batch(64);
    let start = Instant::now();
    for t in &seq_batch {
        std::hint::black_box(
            synthesize_sparse(t, &options.synthesis).expect("corpus machine synthesizes"),
        );
    }
    let seq_s = start.elapsed().as_secs_f64();
    out.insert("batch.seq.b64.machines_per_s".to_string(), 64.0 / seq_s);
    println!("  batch seq      b64   {:>10.0} machines/s", 64.0 / seq_s);

    for &size in &[1usize, 64, 4096] {
        let b = batch(size);
        let start = Instant::now();
        let outcomes = synthesize_many(&b, &options);
        let secs = start.elapsed().as_secs_f64();
        assert!(
            outcomes.iter().all(|o| o.result.is_ok()),
            "batch machine failed"
        );
        let per_s = size as f64 / secs;
        out.insert(format!("batch.throughput.b{size}.machines_per_s"), per_s);
        println!("  batch service  b{size:<5} {per_s:>10.0} machines/s");
    }

    // Cache temperature on a persistent service. The cold batch must be all
    // misses to measure the cache itself (a batch of relabeled corpus
    // machines is mostly warm *within* the batch), so it carries 64 distinct
    // isomorphism classes: 8 output-perturbed variants of each of the 8
    // corpus machines, each randomly relabeled. The hit batch is a fresh
    // relabeling of the same 64 classes and is answered entirely by
    // relabeling cached canonical results.
    fn output_variant(t: &FlowTable, k: usize, name: &str) -> FlowTable {
        use fantom_flow::Bits;
        let mut v = t.clone();
        v.set_name(name);
        let mut j = 0usize;
        for s in t.states() {
            for c in 0..t.num_columns() {
                let Some(out) = t.output(s, c) else { continue };
                if (k >> (j % 3)) & 1 == 1 {
                    let mut bools: Vec<bool> = out.iter().collect();
                    let b = j % bools.len();
                    bools[b] = !bools[b];
                    v.set_entry(s, c, t.next_state(s, c), Some(Bits::from_bools(bools)))
                        .expect("valid coordinates");
                }
                j += 1;
            }
        }
        v
    }
    let class_batch = |rng: &mut u64| -> Vec<FlowTable> {
        let mut machines = Vec::with_capacity(64);
        for k in 0..8usize {
            for t in &corpus {
                let v = output_variant(t, k, &format!("{}_v{k}", t.name()));
                let sm = permutation(rng, v.num_states());
                let im = permutation(rng, v.num_inputs());
                let om = permutation(rng, v.num_outputs());
                machines.push(relabel(&v, &sm, &im, &om, v.name()));
            }
        }
        machines
    };
    let service = SynthesisService::new(ServiceOptions::default());
    let cold_batch = class_batch(&mut rng);
    let start = Instant::now();
    let outcomes = service.synthesize_many(&cold_batch);
    let cold_ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(outcomes.iter().all(|o| o.result.is_ok()));
    let stats = service.cache_stats();
    assert_eq!(
        (stats.hits, stats.misses),
        (0, 64),
        "cold batch must be 64 distinct isomorphism classes"
    );
    let hit_batch = class_batch(&mut rng);
    let start = Instant::now();
    let outcomes = service.synthesize_many(&hit_batch);
    let hit_ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(outcomes.iter().all(|o| o.result.is_ok()));
    let stats = service.cache_stats();
    assert_eq!(stats.hits, 64, "warm batch must be answered from the cache");
    out.insert("batch.cache.cold_ms".to_string(), cold_ms);
    out.insert("batch.cache.hit_ms".to_string(), hit_ms);
    println!(
        "  batch cache    cold {cold_ms:>8.2} ms   hit {hit_ms:>8.2} ms   {:>6.2}x ({} entries)",
        cold_ms / hit_ms,
        stats.entries
    );
}

/// Simulator throughput: the indexed-queue simulator vs the retired global
/// `BinaryHeap` scheduler on the same inertial workload. The circuit is a
/// bank of wide-fanin xor ladders with randomized delays — every skewed
/// input round makes each ladder gate re-evaluate many times inside its own
/// delay window, so the old engine accumulates superseded-event tombstones
/// (extra pops *and* a fatter heap) and re-reads every fanin per
/// re-evaluation, while the indexed queue cancels in place and the
/// counter-based evaluator pays O(1) per fanout edge. Throughput is
/// normalized to *applied* events — the useful work both simulators perform
/// identically — so the ratio is pure engine cost.
fn sim_metrics(out: &mut BTreeMap<String, f64>) {
    use fantom_bench::heap_sim::{HeapDelayStyle, HeapSimulator};
    use fantom_sim::{DelayModel, DelayStyle, GateKind, NetId, Netlist, Simulator};

    const LADDERS: usize = 16;
    const DEPTH: usize = 16;
    const INS: usize = 12;
    const ROUNDS: u64 = 150;

    // LADDERS independent ladders of (INS + 1)-input xor gates: each stage
    // folds the previous stage with every ladder input, so one skewed input
    // round re-evaluates every stage INS times — a glitch amplifier.
    let mut netlist = Netlist::new();
    let mut inputs: Vec<Vec<NetId>> = Vec::new();
    for l in 0..LADDERS {
        let ins: Vec<NetId> = (0..INS)
            .map(|k| netlist.add_primary_input(format!("x{l}_{k}")))
            .collect();
        let mut prev = ins[0];
        for d in 0..DEPTH {
            let stage = netlist.add_net(format!("l{l}_s{d}"));
            let mut fanin = vec![prev];
            fanin.extend(ins.iter().copied());
            netlist.add_gate(GateKind::Xor, fanin, stage);
            prev = stage;
        }
        inputs.push(ins);
    }
    let model = DelayModel::Random {
        min: 8,
        max: 15,
        seed: 0x51D3_CAFE,
    };
    let stimulus: Vec<(NetId, bool, u64)> = (0..ROUNDS)
        .flat_map(|r| {
            let inputs = &inputs;
            (0..LADDERS).flat_map(move |l| {
                let base = 400 * (r + 1);
                inputs[l].iter().enumerate().flat_map(move |(k, &net)| {
                    // All of a ladder's inputs flip inside one gate-delay
                    // window, then half of them pulse back 5 ticks later —
                    // shorter than the minimum gate delay, so downstream
                    // glitches are inertially superseded. The indexed queue
                    // cancels those in place; the heap scheduler pays a
                    // tombstone pop for every one.
                    let v = (r + k as u64) % 2 == 0;
                    let t = base + ((l + k) as u64 % 11);
                    let pulse_back = (k % 2 == 0).then_some((net, !v, t + 5));
                    std::iter::once((net, v, t)).chain(pulse_back)
                })
            })
        })
        .collect();

    // Best-of-N per engine: the workload is deterministic, so the fastest
    // run is the closest estimate of each scheduler's true cost — slower
    // repeats only measure machine noise.
    const REPS: usize = 5;
    let mut indexed_s = f64::INFINITY;
    let mut applied = 0;
    for _ in 0..REPS {
        let start = Instant::now();
        let mut indexed = Simulator::builder(&netlist)
            .delay_model(model.clone())
            .style(DelayStyle::Inertial)
            .event_budget(usize::MAX)
            .build();
        for &(net, value, delta) in &stimulus {
            indexed.schedule_input(net, value, delta);
        }
        indexed.run_until_quiet().expect("workload settles");
        indexed_s = indexed_s.min(start.elapsed().as_secs_f64());
        applied = indexed.events_processed();
    }

    let mut heap_s = f64::INFINITY;
    let mut heap_pops = 0;
    for _ in 0..REPS {
        let start = Instant::now();
        let mut heap = HeapSimulator::with_style(&netlist, &model, HeapDelayStyle::Inertial);
        for &(net, value, delta) in &stimulus {
            heap.schedule_input(net, value, delta);
        }
        heap.run_until_quiet(usize::MAX).expect("workload settles");
        heap_s = heap_s.min(start.elapsed().as_secs_f64());
        heap_pops = heap.events_processed();
    }

    let indexed_per_s = applied as f64 / indexed_s;
    let heap_per_s = applied as f64 / heap_s;
    out.insert("sim.events_per_s.indexed".to_string(), indexed_per_s);
    out.insert("sim.events_per_s.heap".to_string(), heap_per_s);
    out.insert("sim.speedup".to_string(), heap_s / indexed_s);
    println!(
        "  sim scheduler: indexed {indexed_per_s:>12.0} ev/s   heap {heap_per_s:>12.0} ev/s   {:>5.2}x  ({applied} applied, {heap_pops} heap pops)",
        heap_s / indexed_s,
    );
}

/// Monte-Carlo hazard-validation campaigns over the full corpus: 1000
/// sampled delay assignments per machine (every stable transition on the
/// small corpus, 2 sampled sequences per assignment on the large suite),
/// asserting every report is clean — the dynamic confirmation of the
/// analytical hazard verdicts.
fn campaign_metrics(out: &mut BTreeMap<String, f64>) {
    use seance::{run_campaign, run_campaign_sparse, CampaignOptions};

    let assignments = 1000;
    let synthesis = SynthesisOptions {
        minimize_states: false,
        ..SynthesisOptions::default()
    };
    for table in benchmarks::all() {
        let result = synthesize(&table, &synthesis).expect("corpus synthesizes");
        let options = CampaignOptions {
            assignments,
            ..CampaignOptions::default()
        };
        let start = Instant::now();
        let report = run_campaign(&result, &options);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        assert!(report.is_clean(), "{}:\n{}", table.name(), report.render());
        println!(
            "  campaign {:<18} {ms:>9.1} ms   {} steps, {} events, clean",
            table.name(),
            report.steps,
            report.events
        );
        out.insert(format!("campaign.{}.ms", table.name()), ms);
        out.insert(
            format!("campaign.{}.events", table.name()),
            report.events as f64,
        );
    }
    for table in benchmarks::large_suite() {
        let result = synthesize_sparse(&table, &SynthesisOptions::for_large_machines())
            .expect("large machines synthesize");
        let options = CampaignOptions {
            assignments,
            sequences_per_assignment: 2,
            ..CampaignOptions::default()
        };
        let start = Instant::now();
        let report = run_campaign_sparse(&result, &options);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        assert!(report.is_clean(), "{}:\n{}", table.name(), report.render());
        println!(
            "  campaign {:<18} {ms:>9.1} ms   {} steps, {} events, clean",
            table.name(),
            report.steps,
            report.events
        );
        out.insert(format!("campaign.{}.ms", table.name()), ms);
        out.insert(
            format!("campaign.{}.events", table.name()),
            report.events as f64,
        );
    }
}

/// Step-7 hazard factoring on the unreduced large suite: the threaded
/// (default) and single-threaded consensus fan-out, timed with the spec /
/// hazard / Step-6 preparation excluded.
fn factoring_metrics(out: &mut BTreeMap<String, f64>) {
    use seance::factoring::{factor_covers, FactoringOptions};
    let options = SynthesisOptions {
        minimize_states: false,
        ..SynthesisOptions::for_large_machines()
    };
    for table in benchmarks::large_suite() {
        let name = table.name().to_string();
        let assignment = fantom_assign::assign_with_options(&table, &options.assignment);
        let spec = seance::SpecifiedTable::new(table.clone(), assignment).expect("spec builds");
        let hazards = seance::hazard::analyze(&spec);
        let equations = seance::fsv::generate_covers(&spec, &hazards).expect("Step 6 succeeds");
        let runs = 10;
        let measure = |parallel_y: bool| {
            let opts = FactoringOptions {
                parallel_y,
                ..FactoringOptions::default()
            };
            let start = Instant::now();
            for _ in 0..runs {
                std::hint::black_box(factor_covers(&spec, &equations, opts));
            }
            start.elapsed().as_secs_f64() * 1e3 / f64::from(runs)
        };
        let threaded_ms = measure(true);
        let serial_ms = measure(false);
        println!(
            "  factor {name:<10} threaded {threaded_ms:>8.3} ms   serial {serial_ms:>8.3} ms ({} Y vars)",
            equations.y_covers.len()
        );
        out.insert(format!("factor.{name}.ms"), threaded_ms);
        out.insert(format!("factor.{name}.serial_ms"), serial_ms);
    }
}

/// Step-2 reduction metrics: bounded reduction on the large suite (the
/// pivoted, capped Bron–Kerbosch engine) and the exact reducer over the
/// small corpus.
fn reduction_metrics(out: &mut BTreeMap<String, f64>) {
    let options = ReductionOptions::bounded();
    for table in benchmarks::large_suite() {
        let name = table.name().to_string();
        let compat = compatibility(&table);
        let enumeration = maximal_compatibles_bounded(&compat, &options);
        let runs = 20;
        let start = Instant::now();
        let mut reduction = reduce_with_options(&table, &options);
        for _ in 1..runs {
            reduction = reduce_with_options(&table, &options);
        }
        let ms = start.elapsed().as_secs_f64() * 1e3 / f64::from(runs);
        println!(
            "  reduce {name:<10} {ms:>9.3} ms   {} -> {} states, {} compatibles (complete {})",
            table.num_states(),
            reduction.table.num_states(),
            enumeration.compatibles.len(),
            enumeration.complete,
        );
        out.insert(format!("reduce.{name}.ms"), ms);
        out.insert(
            format!("reduce.{name}.compatibles"),
            enumeration.compatibles.len() as f64,
        );
        out.insert(
            format!("reduce.{name}.classes"),
            reduction.table.num_states() as f64,
        );
        out.insert(
            format!("reduce.{name}.complete"),
            f64::from(enumeration.complete),
        );
    }
    // Exact reduction across the whole small corpus, as one aggregate metric.
    let small = benchmarks::all();
    let runs = 20;
    let start = Instant::now();
    for _ in 0..runs {
        for table in &small {
            std::hint::black_box(reduce(table));
        }
    }
    let ms = start.elapsed().as_secs_f64() * 1e3 / f64::from(runs);
    println!(
        "  reduce small corpus ({} machines) {ms:>9.3} ms",
        small.len()
    );
    out.insert("reduce.small_corpus.ms".to_string(), ms);
}

/// Step-3 assignment metrics: the packed Tracey engine over the small corpus
/// (default budgets) and the unreduced large suite (the bounded budgets the
/// large-machine path uses). `vars` records the code width so width
/// regressions are visible alongside time regressions.
fn assignment_metrics(out: &mut BTreeMap<String, f64>) {
    use fantom_assign::{assign_with_options, AssignmentOptions};
    let mut measure = |table: &fantom_flow::FlowTable, options: &AssignmentOptions, runs: u32| {
        let start = Instant::now();
        let mut assignment = assign_with_options(table, options);
        for _ in 1..runs {
            assignment = assign_with_options(table, options);
        }
        let ms = start.elapsed().as_secs_f64() * 1e3 / f64::from(runs);
        assignment
            .verify(table)
            .unwrap_or_else(|e| panic!("{}: {e}", table.name()));
        println!(
            "  assign {:<14} {ms:>9.3} ms   {} states -> {} vars",
            table.name(),
            table.num_states(),
            assignment.num_vars()
        );
        out.insert(format!("assign.{}.ms", table.name()), ms);
        out.insert(
            format!("assign.{}.vars", table.name()),
            assignment.num_vars() as f64,
        );
    };
    let default = AssignmentOptions::default();
    for table in benchmarks::all() {
        measure(&table, &default, 20);
    }
    let bounded = AssignmentOptions::bounded();
    for table in benchmarks::large_suite() {
        measure(&table, &bounded, 5);
    }
    // Assignment-only coverage of the item-10 generated grid: keys carry the
    // lattice coordinates (`assign.s18.d50.ms`) instead of the generator's
    // long seed-bearing names, mirroring `grid.*`.
    use fantom_flow::generate::{generate, GeneratorOptions};
    for &states in &[10usize, 18, 26] {
        for &dc in &[0.25f64, 0.5, 0.75] {
            let table = generate(&GeneratorOptions {
                states,
                dc_density: dc,
                ..GeneratorOptions::default()
            });
            let runs = 10;
            let start = Instant::now();
            let mut assignment = assign_with_options(&table, &bounded);
            for _ in 1..runs {
                assignment = assign_with_options(&table, &bounded);
            }
            let ms = start.elapsed().as_secs_f64() * 1e3 / f64::from(runs);
            assignment
                .verify(&table)
                .unwrap_or_else(|e| panic!("{}: {e}", table.name()));
            let key = format!("assign.s{states}.d{}", (dc * 100.0) as u32);
            println!(
                "  assign s{states:<3} d{:<3}    {ms:>9.3} ms   {} states -> {} vars",
                (dc * 100.0) as u32,
                table.num_states(),
                assignment.num_vars()
            );
            out.insert(format!("{key}.ms"), ms);
            out.insert(format!("{key}.vars"), assignment.num_vars() as f64);
        }
    }
}

/// Item 12: the indexed Step-3 engine vs the retained scalar references.
///
/// `grow_candidates` (shared dichotomy index, incremental covers, one
/// monotone absorption pass) is compared against
/// [`fantom_bench::reference::scalar_candidate_growth`] (two wrap-around
/// `try_absorb` passes plus a full separation rescan per candidate), and the
/// lazy-max [`fantom_assign::greedy_cover_sets`] against the rescan-per-pick
/// [`fantom_bench::reference::scalar_greedy_cover`], on the unreduced large
/// suite. Both comparisons run at the like-for-like configuration (two seed
/// orderings, adjacency seeding off) where the engines provably enumerate
/// identical pools and picks — asserted here so the reference can never
/// silently drift from the production engine.
fn assign_index_metrics(out: &mut BTreeMap<String, f64>) {
    use fantom_assign::{
        greedy_cover_sets, grow_candidates, required_dichotomies, AssignScratch, AssignmentOptions,
    };
    use fantom_bench::reference::{scalar_candidate_growth, scalar_greedy_cover};

    let mut scratch = AssignScratch::default();
    for table in benchmarks::large_suite() {
        let dichotomies = required_dichotomies(&table);
        let options = AssignmentOptions {
            seed_orderings: 2,
            adjacency_seeding: false,
            ..AssignmentOptions::bounded()
        };
        let runs = 5;
        let start = Instant::now();
        let mut pool_len = 0usize;
        for _ in 0..runs {
            pool_len = grow_candidates(&dichotomies, &[], &options, &mut scratch).len();
        }
        let grow_ms = start.elapsed().as_secs_f64() * 1e3 / f64::from(runs);

        let start = Instant::now();
        let mut reference =
            scalar_candidate_growth(&dichotomies, 2, options.max_candidate_partitions);
        for _ in 1..runs {
            reference = scalar_candidate_growth(&dichotomies, 2, options.max_candidate_partitions);
        }
        let grow_ref_ms = start.elapsed().as_secs_f64() * 1e3 / f64::from(runs);

        let pool = grow_candidates(&dichotomies, &[], &options, &mut scratch);
        assert_eq!(pool.len(), reference.len(), "{}: pool size", table.name());
        for (p, (d, covers)) in pool.iter().zip(&reference) {
            assert_eq!(p.dichotomy(), d, "{}: candidate pool", table.name());
            assert!(p.covers().same_contents(covers), "{}: covers", table.name());
        }

        let covers: Vec<_> = reference.into_iter().map(|(_, c)| c).collect();
        let num = dichotomies.len();
        assert_eq!(
            greedy_cover_sets(&covers, num),
            scalar_greedy_cover(&covers, num),
            "{}: greedy picks",
            table.name()
        );
        let greedy_ns = time_ns(|| greedy_cover_sets(&covers, num).len());
        let greedy_ref_ns = time_ns(|| scalar_greedy_cover(&covers, num).len());

        let name = table.name();
        println!(
            "  index {name:<10} grow {grow_ms:>8.3} ms (scalar {grow_ref_ms:>8.3} ms, {pool_len} candidates)   greedy {greedy_ns:>9.0} ns (scalar {greedy_ref_ns:>9.0} ns)"
        );
        out.insert(format!("assign.index.{name}.grow_ms"), grow_ms);
        out.insert(format!("assign.index.{name}.grow_ref_ms"), grow_ref_ms);
        out.insert(format!("assign.index.{name}.greedy_ns"), greedy_ns);
        out.insert(format!("assign.index.{name}.greedy_ref_ns"), greedy_ref_ns);
    }
}

fn synthesis_metrics(out: &mut BTreeMap<String, f64>) {
    // Paper suite through the dense pipeline (PR 1 continuity).
    let options = table1_options();
    for table in benchmarks::paper_suite() {
        let start = Instant::now();
        let runs = 5;
        for _ in 0..runs {
            std::hint::black_box(synthesize(&table, &options).expect("synthesis succeeds"));
        }
        let ms = start.elapsed().as_secs_f64() * 1e3 / f64::from(runs);
        println!("  synth {:<14} {ms:>9.3} ms (dense)", table.name());
        out.insert(format!("synth.{}.ms", table.name()), ms);
    }
    // Large suite through the sparse pipeline. `e2e.*` keeps the PR 2 shape
    // (Step 2 off, full 40-state tables) so the baseline comparison stays
    // like-for-like; `e2e_reduced.*` is the default large-machine path with
    // bounded Step-2 reduction enabled. Since the packed Step-3 engine the
    // codes are short enough that the dense pipeline *accepts* these
    // machines too — `dense_infeasible` is emitted only if that ever stops
    // being true.
    let unreduced = SynthesisOptions {
        minimize_states: false,
        ..SynthesisOptions::for_large_machines()
    };
    let reduced = SynthesisOptions::for_large_machines();
    for table in benchmarks::large_suite() {
        // Average a few runs — single-shot second-scale samples are too noisy
        // to gate on shared CI runners.
        let runs = 3;
        let start = Instant::now();
        let mut result = synthesize_sparse(&table, &unreduced).expect("sparse synthesis succeeds");
        for _ in 1..runs {
            result = synthesize_sparse(&table, &unreduced).expect("sparse synthesis succeeds");
        }
        let ms = start.elapsed().as_secs_f64() * 1e3 / f64::from(runs);
        println!(
            "  e2e   {:<14} {ms:>9.1} ms (sparse, {} vars, depth {})",
            table.name(),
            result.spec.num_vars(),
            result.depth.total_depth
        );
        out.insert(format!("e2e.{}.ms", table.name()), ms);
        out.insert(
            format!("e2e.{}.vars", table.name()),
            result.spec.num_vars() as f64,
        );
        if synthesize(&table, &unreduced).is_err() {
            out.insert(format!("e2e.{}.dense_infeasible", table.name()), 1.0);
        }

        let start = Instant::now();
        let mut result = synthesize_sparse(&table, &reduced).expect("reduced synthesis succeeds");
        for _ in 1..runs {
            result = synthesize_sparse(&table, &reduced).expect("reduced synthesis succeeds");
        }
        let ms = start.elapsed().as_secs_f64() * 1e3 / f64::from(runs);
        println!(
            "  e2e   {:<14} {ms:>9.1} ms (sparse + bounded Step 2, {} states, {} vars)",
            format!("{}*", table.name()),
            result.reduced_table.num_states(),
            result.spec.num_vars(),
        );
        out.insert(format!("e2e_reduced.{}.ms", table.name()), ms);
        out.insert(
            format!("e2e_reduced.{}.states", table.name()),
            result.reduced_table.num_states() as f64,
        );
    }
}

/// Generated-machine grid: sparse synthesis over the 3×3 (size × dc-density)
/// lattice of `fantom_flow::generate` machines. Key names carry the grid
/// coordinates (`grid.s18.d50.ms` = 18 states at 50% dc-density); `cubes` is
/// the total first-level gate count of the factored machine (fsv + Y + Z
/// covers) and `depth` the Table-1 total depth, so gate-count regressions in
/// any of Steps 2–7 surface here even when wall time stays flat.
fn grid_metrics(out: &mut BTreeMap<String, f64>) {
    use fantom_flow::generate::{generate, GeneratorOptions};

    let options = SynthesisOptions::for_large_machines();
    for &states in &[10usize, 18, 26] {
        for &dc in &[0.25f64, 0.5, 0.75] {
            let table = generate(&GeneratorOptions {
                states,
                dc_density: dc,
                ..GeneratorOptions::default()
            });
            let runs = 5;
            let start = Instant::now();
            let mut result = synthesize_sparse(&table, &options).expect("grid machine synthesizes");
            for _ in 1..runs {
                result = synthesize_sparse(&table, &options).expect("grid machine synthesizes");
            }
            let ms = start.elapsed().as_secs_f64() * 1e3 / f64::from(runs);
            let cubes = result.factored.fsv_cover.cube_count()
                + result
                    .factored
                    .y_covers
                    .iter()
                    .map(|c| c.cube_count())
                    .sum::<usize>()
                + result
                    .outputs
                    .z_covers
                    .iter()
                    .map(|c| c.cube_count())
                    .sum::<usize>();
            let key = format!("grid.s{states}.d{}", (dc * 100.0) as u32);
            println!(
                "  grid s{states:<3} d{:<3} {ms:>9.3} ms   {cubes:>4} cubes, depth {}",
                (dc * 100.0) as u32,
                result.depth.total_depth
            );
            out.insert(format!("{key}.ms"), ms);
            out.insert(format!("{key}.cubes"), cubes as f64);
            out.insert(format!("{key}.depth"), result.depth.total_depth as f64);
        }
    }
}

/// Parse a flat `"key": value` JSON object (the format this tool emits).
fn parse_flat_json(text: &str) -> BTreeMap<String, f64> {
    let mut map = BTreeMap::new();
    let mut rest = text;
    while let Some(open) = rest.find('"') {
        rest = &rest[open + 1..];
        let Some(close) = rest.find('"') else { break };
        let key = &rest[..close];
        rest = &rest[close + 1..];
        let Some(colon) = rest.find(':') else { break };
        rest = &rest[colon + 1..];
        let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
        if let Ok(value) = rest[..end].trim().parse::<f64>() {
            map.insert(key.to_string(), value);
        }
        rest = &rest[end..];
    }
    map
}

/// Compare current metrics against a baseline; returns the violations.
fn regressions(current: &BTreeMap<String, f64>, baseline: &BTreeMap<String, f64>) -> Vec<String> {
    let mut violations = Vec::new();
    for (key, &base) in baseline {
        let floor = if key.ends_with("_ns") {
            FLOOR_NS
        } else if key.ends_with(".ms") || key.ends_with("_ms") {
            FLOOR_MS
        } else {
            continue; // speedups, counts and flags are not gated
        };
        let Some(&now) = current.get(key) else {
            continue;
        };
        let ratio = if key.starts_with("campaign.") {
            CAMPAIGN_REGRESSION_RATIO
        } else {
            REGRESSION_RATIO
        };
        if base > 0.0 && now > base * ratio && now - base > floor {
            violations.push(format!(
                "{key}: {now:.3} vs baseline {base:.3} ({:.2}x > {ratio}x)",
                now / base
            ));
        }
    }
    violations
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_pr10.json".to_string();
    let mut baseline_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--baseline" {
            baseline_path = args.get(i + 1).cloned();
            i += 2;
        } else {
            out_path = args[i].clone();
            i += 1;
        }
    }

    let mut metrics: BTreeMap<String, f64> = BTreeMap::new();
    metrics.insert("pr".to_string(), 10.0);

    println!("cube-kernel micro benchmarks ({PAIRS} pairs, {NUM_VARS} vars):");
    micro_metrics(&mut metrics);
    println!("\nlane kernels vs scalar word loops:");
    lane_metrics(&mut metrics);
    println!("\nsparse vs dense engine:");
    engine_metrics(&mut metrics);
    println!("\nstate reduction (Step 2):");
    reduction_metrics(&mut metrics);
    println!("\nstate assignment (Step 3):");
    assignment_metrics(&mut metrics);
    println!("\nindexed assignment engine vs scalar references:");
    assign_index_metrics(&mut metrics);
    println!("\nhazard factoring (Step 7):");
    factoring_metrics(&mut metrics);
    println!("\nend-to-end synthesis:");
    synthesis_metrics(&mut metrics);
    println!("\nbatch synthesis service:");
    batch_metrics(&mut metrics);
    println!("\nsimulator scheduler:");
    sim_metrics(&mut metrics);
    println!("\nhazard-validation campaigns:");
    campaign_metrics(&mut metrics);
    println!("\ngenerated-machine grid:");
    grid_metrics(&mut metrics);

    let mut json = String::from("{\n");
    let total = metrics.len();
    for (i, (key, value)) in metrics.iter().enumerate() {
        let _ = writeln!(
            json,
            "  \"{key}\": {value:.4}{}",
            if i + 1 < total { "," } else { "" }
        );
    }
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write bench JSON");
    println!("\nwrote {out_path}");

    if let Some(path) = baseline_path {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
        let baseline = parse_flat_json(&text);
        let violations = regressions(&metrics, &baseline);
        if violations.is_empty() {
            println!(
                "perf gate: OK ({} gated metrics within tolerance of {path})",
                baseline
                    .keys()
                    .filter(|k| k.ends_with("_ns") || k.ends_with(".ms") || k.ends_with("_ms"))
                    .count()
            );
        } else {
            eprintln!(
                "perf gate: FAILED — {} regression(s) vs {path}:",
                violations.len()
            );
            for v in &violations {
                eprintln!("  {v}");
            }
            std::process::exit(1);
        }
    }
}
