//! Baseline comparison (the paper's Section 7 discussion): FANTOM versus the
//! classical single-input-change Huffman implementation and versus an
//! STG-style single-bit input expansion.
//!
//! Run with `cargo run -p fantom-bench --bin baselines --release`.

fn main() {
    println!("FANTOM vs. classical Huffman baseline vs. STG-style input expansion\n");
    let rows = fantom_bench::run_baselines();
    println!("{}", fantom_bench::render_baselines(&rows));
    println!(
        "FANTOM trades extra logic depth (the fsv feedback) for protection of every hazardous \
         total state; the Huffman baseline is shallower but leaves the listed hazard states \
         unprotected, and the STG approach pays with extra specification states instead."
    );
}
