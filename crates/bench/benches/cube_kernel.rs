//! Microbenchmarks of the bit-packed cube kernel against the naive
//! literal-vector reference it replaced: containment, adjacency merge,
//! intersection and minterm membership over corpora at 24 variables (the
//! dense-function regime) and 33 variables (heap spillover).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fantom_bench::reference::{
    adjacent_pair_strings, containment_pair_strings, membership_queries, random_cube_strings,
    NaiveCube,
};
use fantom_boolean::Cube;

const PAIRS: usize = 512;

type Corpus = (Vec<(Cube, Cube)>, Vec<(NaiveCube, NaiveCube)>);

fn pair_corpus(pairs: &[(String, String)]) -> Corpus {
    let packed = pairs
        .iter()
        .map(|(a, b)| (Cube::parse(a).unwrap(), Cube::parse(b).unwrap()))
        .collect();
    let naive = pairs
        .iter()
        .map(|(a, b)| (NaiveCube::parse(a), NaiveCube::parse(b)))
        .collect();
    (packed, naive)
}

fn bench_cube_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("cube_kernel");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(600));

    for &n in &[24usize, 33] {
        let (packed, naive) = pair_corpus(&containment_pair_strings(0xBEEF, n, PAIRS));
        let (packed_adj, naive_adj) = pair_corpus(&adjacent_pair_strings(0xFEED, n, PAIRS));

        group.bench_function(format!("containment/packed/{n}v"), |b| {
            b.iter(|| {
                packed
                    .iter()
                    .filter(|(a, x)| black_box(a).covers(black_box(x)))
                    .count()
            })
        });
        group.bench_function(format!("containment/naive/{n}v"), |b| {
            b.iter(|| {
                naive
                    .iter()
                    .filter(|(a, x)| black_box(a).covers(black_box(x)))
                    .count()
            })
        });

        group.bench_function(format!("merge/packed/{n}v"), |b| {
            b.iter(|| {
                packed_adj
                    .iter()
                    .filter(|(a, x)| black_box(a).combine_adjacent(black_box(x)).is_some())
                    .count()
            })
        });
        group.bench_function(format!("merge/naive/{n}v"), |b| {
            b.iter(|| {
                naive_adj
                    .iter()
                    .filter(|(a, x)| black_box(a).combine_adjacent(black_box(x)).is_some())
                    .count()
            })
        });

        group.bench_function(format!("intersection/packed/{n}v"), |b| {
            b.iter(|| {
                packed
                    .iter()
                    .filter(|(a, x)| black_box(a).intersect(black_box(x)).is_some())
                    .count()
            })
        });
        group.bench_function(format!("intersection/naive/{n}v"), |b| {
            b.iter(|| {
                naive
                    .iter()
                    .filter(|(a, x)| black_box(a).intersect(black_box(x)).is_some())
                    .count()
            })
        });
    }

    // Minterm membership only fits in u64 indices below 64 vars; use 24.
    let strings = random_cube_strings(0xBEEF, 24, PAIRS);
    let queries = membership_queries(0xBEEF, &strings);
    let packed: Vec<Cube> = strings.iter().map(|s| Cube::parse(s).unwrap()).collect();
    let naive: Vec<NaiveCube> = strings.iter().map(|s| NaiveCube::parse(s)).collect();
    group.bench_function("minterm_membership/packed/24v", |b| {
        b.iter(|| {
            packed
                .iter()
                .zip(&queries)
                .filter(|(a, &m)| a.contains_minterm(black_box(m)))
                .count()
        })
    });
    group.bench_function("minterm_membership/naive/24v", |b| {
        b.iter(|| {
            naive
                .iter()
                .zip(&queries)
                .filter(|(a, &m)| a.contains_minterm(black_box(m)))
                .count()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_cube_kernel);
criterion_main!(benches);
