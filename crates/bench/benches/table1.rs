//! E1 — Table 1 regeneration benchmark: times the per-step cost of producing
//! the Table-1 depth metrics for every benchmark of the paper's suite
//! (state assignment, hazard search, fsv/next-state generation, factoring).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use seance::factoring::{factor, FactoringOptions};
use seance::SpecifiedTable;

fn bench_table1_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_steps");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));

    for table in fantom_flow::benchmarks::paper_suite() {
        let name = table.name().to_string();

        group.bench_function(format!("{name}/assignment"), |b| {
            b.iter(|| fantom_assign::assign(&table))
        });

        let assignment = fantom_assign::assign(&table);
        let spec = SpecifiedTable::new(table.clone(), assignment).expect("spec builds");

        group.bench_function(format!("{name}/hazard_search"), |b| {
            b.iter(|| seance::hazard::analyze(&spec))
        });

        let hazards = seance::hazard::analyze(&spec);
        group.bench_function(format!("{name}/fsv_generation"), |b| {
            b.iter(|| seance::fsv::generate(&spec, &hazards).expect("fsv generation"))
        });

        let equations = seance::fsv::generate(&spec, &hazards).expect("fsv generation");
        group.bench_function(format!("{name}/factoring"), |b| {
            b.iter_batched(
                || equations.clone(),
                |eqs| factor(&spec, &eqs, FactoringOptions::default()),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1_steps);
criterion_main!(benches);
