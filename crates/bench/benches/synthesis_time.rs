//! E2 — End-to-end synthesis time per benchmark (the paper's "about four
//! seconds of CPU time on a VAXStation 3100" remark, Section 6).

use criterion::{criterion_group, criterion_main, Criterion};
use fantom_bench::table1_options;
use seance::synthesize;

fn bench_synthesis_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesis_time");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    let options = table1_options();

    for table in fantom_flow::benchmarks::paper_suite() {
        group.bench_function(table.name().to_string(), |b| {
            b.iter(|| synthesize(&table, &options).expect("synthesis succeeds"))
        });
    }

    // The full corpus end-to-end, as a single headline number.
    group.bench_function("all_benchmarks", |b| {
        b.iter(|| {
            for table in fantom_flow::benchmarks::paper_suite() {
                synthesize(&table, &options).expect("synthesis succeeds");
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_synthesis_time);
criterion_main!(benches);
