//! E4 — Baseline comparison: synthesis cost of FANTOM versus the classical
//! single-input-change Huffman implementation (Section 7 of the paper).

use criterion::{criterion_group, criterion_main, Criterion};
use fantom_bench::table1_options;
use seance::baseline::{huffman_baseline, stg_expansion_estimate};
use seance::synthesize;

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    let options = table1_options();

    for table in fantom_flow::benchmarks::paper_suite() {
        group.bench_function(format!("{}/fantom", table.name()), |b| {
            b.iter(|| synthesize(&table, &options).expect("synthesis succeeds"))
        });
        group.bench_function(format!("{}/huffman", table.name()), |b| {
            b.iter(|| huffman_baseline(&table).expect("baseline synthesis succeeds"))
        });
        group.bench_function(format!("{}/stg_estimate", table.name()), |b| {
            b.iter(|| stg_expansion_estimate(&table))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
