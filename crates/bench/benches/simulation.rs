//! E5 — Delay-accurate simulation of the emitted FANTOM machines: the cost of
//! driving every multiple-input-change transition of a benchmark through the
//! gate-level netlist with randomized delays.

use criterion::{criterion_group, criterion_main, Criterion};
use fantom_bench::synthesize_benchmark;
use seance::emit::{emit, DEFAULT_LOOP_STAGES};
use seance::validate::simulate_transition;

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));

    for table in [
        fantom_flow::benchmarks::test_example(),
        fantom_flow::benchmarks::traffic(),
        fantom_flow::benchmarks::lion(),
        fantom_flow::benchmarks::lion9(),
    ] {
        let result = synthesize_benchmark(&table);
        let machine = emit(&result, DEFAULT_LOOP_STAGES);
        let transitions = result.reduced_table.multiple_input_change_transitions();

        group.bench_function(format!("{}/emit", table.name()), |b| {
            b.iter(|| emit(&result, DEFAULT_LOOP_STAGES))
        });
        group.bench_function(
            format!(
                "{}/simulate_{}_transitions",
                table.name(),
                transitions.len()
            ),
            |b| {
                b.iter(|| {
                    for (i, tr) in transitions.iter().enumerate() {
                        let check = simulate_transition(&result, &machine, tr, i as u64 + 1);
                        assert!(check.final_state_correct, "simulation must stay correct");
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
