//! E3 — Ablation: the cost of the Step-7 hazard factoring (consensus terms,
//! all-prime `fsv`, first-level-gate conversion) versus the plain two-level
//! machine, per benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use fantom_bench::table1_options;
use seance::{synthesize, SynthesisOptions};

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_factoring");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));

    let with = table1_options();
    let without = SynthesisOptions {
        hazard_factoring: false,
        fsv_all_primes: false,
        ..table1_options()
    };

    for table in fantom_flow::benchmarks::paper_suite() {
        group.bench_function(format!("{}/factored", table.name()), |b| {
            b.iter(|| synthesize(&table, &with).expect("synthesis succeeds"))
        });
        group.bench_function(format!("{}/two_level", table.name()), |b| {
            b.iter(|| synthesize(&table, &without).expect("synthesis succeeds"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
