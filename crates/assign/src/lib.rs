//! Unicode single-transition-time (USTT) state assignment.
//!
//! Step 3 of SEANCE assigns binary codes to the rows of the reduced flow
//! table using Tracey's partition-set method (Tracey 1966). The assignment is
//! a *USTT* assignment: one code per row, and every transition may fire all of
//! its changing state variables simultaneously without any critical race —
//! for any two disjoint transitions under the same input column there is a
//! state variable that separates them, so an intermediate (racing) code can
//! never be mistaken for a code involved in a different transition.
//!
//! The implementation follows the classical flow:
//!
//! 1. generate the **dichotomies** required by each input column's transition
//!    pairs, plus the pairwise dichotomies that force distinct codes
//!    ([`dichotomy`]),
//! 2. merge compatible dichotomies into candidate partitions and select a
//!    small set of partitions covering every dichotomy ([`covering`]),
//! 3. emit the code matrix and verify uniqueness and race-freedom
//!    ([`assignment`]).
//!
//! # Example
//!
//! ```
//! use fantom_flow::benchmarks;
//! use fantom_assign::assign;
//!
//! let table = benchmarks::lion();
//! let assignment = assign(&table);
//! assert!(assignment.verify(&table).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assignment;
pub mod covering;
pub mod dichotomy;

pub use assignment::{assign, AssignmentError, StateAssignment};
pub use covering::select_partitions;
pub use dichotomy::{required_dichotomies, Dichotomy};
