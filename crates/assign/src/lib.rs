//! Unicode single-transition-time (USTT) state assignment.
//!
//! Step 3 of SEANCE assigns binary codes to the rows of the reduced flow
//! table using Tracey's partition-set method (Tracey 1966). The assignment is
//! a *USTT* assignment: one code per row, and every transition may fire all of
//! its changing state variables simultaneously without any critical race —
//! for any two disjoint transitions under the same input column there is a
//! state variable that separates them, so an intermediate (racing) code can
//! never be mistaken for a code involved in a different transition.
//!
//! The implementation is a word-parallel, budgeted engine (mirroring the
//! bounded Step-2 architecture of `fantom-minimize`):
//!
//! 1. generate the **dichotomies** required by each input column's transition
//!    pairs, plus the pairwise dichotomies that force distinct codes. Each
//!    dichotomy is a pair of packed state bitsets, so merging, separation and
//!    subsumption are word-parallel bit tests; duplicates and subsumed
//!    dichotomies are removed up front ([`dichotomy`]);
//! 2. grow candidate partitions by greedily absorbing compatible dichotomies
//!    over several distinct seed orderings — plus adjacency-cluster seeds
//!    from Tracey's column grouping — driven by an inverted state→dichotomy
//!    **index** ([`index`]) that enumerates only the ids still compatible
//!    with the growing candidate and maintains each candidate's coverage set
//!    incrementally; then select a small covering set — exact minimum cover
//!    when the candidate set is small, lazy-max greedy cover plus
//!    local-search refinement (drop / pair-consolidate) otherwise
//!    ([`covering`]);
//! 3. emit the code matrix and verify uniqueness and race-freedom
//!    ([`assignment`]).
//!
//! Batch callers thread an [`AssignScratch`] through [`assign_in`] so the
//! index, growth state and selection buffers are allocated once per worker
//! (the synthesis service's `Workspace` carry-over).
//!
//! [`AssignmentOptions`] budgets every phase; whatever the caps, the engine
//! degrades to a guaranteed-valid assignment (dedicated partitions for any
//! dichotomy the budgets left uncovered, pairwise-distinct codes) rather than
//! failing, so [`StateAssignment::verify`] always passes on the produced
//! codes.
//!
//! # Example
//!
//! ```
//! use fantom_flow::benchmarks;
//! use fantom_assign::{assign, assign_with_options, AssignmentOptions};
//!
//! let table = benchmarks::lion();
//! let assignment = assign(&table);
//! assert!(assignment.verify(&table).is_ok());
//!
//! // Large machines use the bounded budgets.
//! let bounded = assign_with_options(&table, &AssignmentOptions::bounded());
//! assert!(bounded.verify(&table).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assignment;
pub mod covering;
pub mod dichotomy;
pub mod index;
pub mod options;

pub use assignment::{
    adjacency_seeds, assign, assign_in, assign_with_options, AssignmentError, StateAssignment,
};
pub use covering::{
    greedy_cover_sets, grow_candidates, select_partitions, select_partitions_in,
    select_partitions_with, AssignScratch, Partition,
};
pub use dichotomy::{required_dichotomies, state_set, Dichotomy, StateSet};
pub use index::DichotomyIndex;
pub use options::AssignmentOptions;
