//! Resource budgets for the state-assignment engine.

/// Budgets and knobs controlling Step 3 (USTT state assignment).
///
/// Tracey assignment is a set cover over separation constraints: candidate
/// partitions are grown by merging dichotomies, and a small set of partitions
/// covering every required dichotomy becomes the state variables. Both
/// phases are bounded so assignment stays fast on *every* machine: candidate
/// generation is capped, the exact cover search runs only on small candidate
/// sets (and under a node budget), and selection otherwise degrades to a
/// greedy cover followed by local-search refinement. Whatever the budgets,
/// the produced assignment is always valid — any dichotomy the selection
/// failed to cover is given its own dedicated partition, and the final code
/// matrix is verifiable with
/// [`StateAssignment::verify`](crate::StateAssignment::verify).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AssignmentOptions {
    /// Stop candidate-partition generation after this many distinct
    /// candidates.
    pub max_candidate_partitions: usize,
    /// Number of distinct seed orderings used to grow candidates. Each
    /// ordering greedily absorbs the dichotomy list in a different order, so
    /// more orderings mean more candidate diversity (and proportionally more
    /// generation work).
    pub seed_orderings: usize,
    /// Rounds of local-search refinement (drop redundant partitions, replace
    /// partition pairs by a single candidate) applied to the greedy cover.
    pub refine_passes: usize,
    /// Run the exact minimum-cover search only when there are at most this
    /// many candidate partitions; larger instances go straight to
    /// greedy-plus-refinement.
    pub exact_max_candidates: usize,
    /// Abort the exact cover search after this many search nodes and fall
    /// back to the greedy cover.
    pub exact_node_budget: u64,
    /// Also seed candidate growth from adjacency clusters (Tracey's column
    /// grouping over the flow table's next-state partitions) before the seed
    /// orderings. The clusters reach merged partitions the dichotomy-seeded
    /// orderings tend to miss on wide-column machines, at negligible extra
    /// generation cost (a handful of seeds per input column).
    pub adjacency_seeding: bool,
}

impl Default for AssignmentOptions {
    /// Effectively exact for the small benchmark corpus: the exact cover
    /// search runs whenever the candidate set is small, and the greedy path
    /// refines generously.
    fn default() -> Self {
        AssignmentOptions {
            max_candidate_partitions: 4096,
            seed_orderings: 3,
            refine_passes: 4,
            exact_max_candidates: 24,
            exact_node_budget: 5_000_000,
            adjacency_seeding: true,
        }
    }
}

impl AssignmentOptions {
    /// Tight budgets for large (40-state-class) machines: fewer seed
    /// orderings and refinement rounds, and a smaller candidate cap.
    /// Assignment stays millisecond-scale on the `large_suite` benchmarks at
    /// a small cost in code width.
    pub fn bounded() -> Self {
        AssignmentOptions {
            max_candidate_partitions: 1536,
            seed_orderings: 2,
            refine_passes: 3,
            exact_max_candidates: 24,
            exact_node_budget: 1_000_000,
            adjacency_seeding: true,
        }
    }

    /// Spend more effort searching for short codes: more orderings, more
    /// refinement, a larger exact-search window. Still budgeted (the exact
    /// search keeps its node cap), just slower and usually narrower.
    pub fn thorough() -> Self {
        AssignmentOptions {
            max_candidate_partitions: 16384,
            seed_orderings: 6,
            refine_passes: 8,
            exact_max_candidates: 28,
            exact_node_budget: 20_000_000,
            adjacency_seeding: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_effort() {
        let bounded = AssignmentOptions::bounded();
        let default = AssignmentOptions::default();
        let thorough = AssignmentOptions::thorough();
        assert!(bounded.seed_orderings <= default.seed_orderings);
        assert!(default.seed_orderings <= thorough.seed_orderings);
        assert!(bounded.max_candidate_partitions <= default.max_candidate_partitions);
        assert!(default.max_candidate_partitions <= thorough.max_candidate_partitions);
        assert!(bounded.refine_passes <= thorough.refine_passes);
        assert!(bounded.seed_orderings >= 1);
    }
}
