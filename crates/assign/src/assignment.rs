//! The state-code matrix produced by the USTT assignment and its verification.

use std::fmt;

use fantom_flow::{Bits, FlowTable, StateId};

use crate::covering::{select_partitions_in, AssignScratch};
use crate::dichotomy::{required_dichotomies, Dichotomy, StateSet};
use crate::options::AssignmentOptions;

/// A complete state assignment: one binary code per flow-table state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateAssignment {
    codes: Vec<Bits>,
    num_vars: usize,
}

/// A violation detected by [`StateAssignment::verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AssignmentError {
    /// Two states received the same code.
    DuplicateCode {
        /// First state of the colliding pair.
        a: StateId,
        /// Second state of the colliding pair.
        b: StateId,
    },
    /// A required dichotomy is not separated by any state variable, so a
    /// critical race is possible.
    CriticalRace {
        /// The dichotomy that no variable separates.
        dichotomy: String,
    },
    /// The assignment has a different number of codes than the table has states.
    WrongStateCount {
        /// Codes in the assignment.
        codes: usize,
        /// States in the table.
        states: usize,
    },
}

impl fmt::Display for AssignmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssignmentError::DuplicateCode { a, b } => {
                write!(f, "states {a} and {b} share the same code")
            }
            AssignmentError::CriticalRace { dichotomy } => {
                write!(f, "no state variable separates dichotomy {dichotomy}")
            }
            AssignmentError::WrongStateCount { codes, states } => {
                write!(
                    f,
                    "assignment has {codes} codes but the table has {states} states"
                )
            }
        }
    }
}

impl std::error::Error for AssignmentError {}

impl StateAssignment {
    /// Build an assignment from an explicit code list.
    ///
    /// # Panics
    ///
    /// Panics if the codes do not all share the same width.
    pub fn from_codes(codes: Vec<Bits>) -> Self {
        let num_vars = codes.first().map_or(0, Bits::width);
        assert!(
            codes.iter().all(|c| c.width() == num_vars),
            "codes must share a width"
        );
        StateAssignment { codes, num_vars }
    }

    /// Number of state variables (code width).
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of coded states.
    pub fn num_states(&self) -> usize {
        self.codes.len()
    }

    /// The code of a state.
    ///
    /// # Panics
    ///
    /// Panics if the state index is out of range.
    pub fn code(&self, state: StateId) -> &Bits {
        &self.codes[state.0]
    }

    /// All codes in state order.
    pub fn codes(&self) -> &[Bits] {
        &self.codes
    }

    /// Find the state whose code equals `bits`, if any.
    pub fn state_with_code(&self, bits: &Bits) -> Option<StateId> {
        self.codes.iter().position(|c| c == bits).map(StateId)
    }

    /// The column of state variable `v` as a packed state set: bit `s` is
    /// set iff state `s` is coded 1 in variable `v`.
    fn variable_column(&self, v: usize) -> StateSet {
        StateSet::from_minterms(
            self.codes.len() as u64,
            self.codes
                .iter()
                .enumerate()
                .filter(|(_, c)| c.bit(v))
                .map(|(s, _)| s as u64),
        )
    }

    /// All variable columns in variable order.
    fn variable_columns(&self) -> Vec<StateSet> {
        (0..self.num_vars)
            .map(|v| self.variable_column(v))
            .collect()
    }

    /// Verify that this assignment is a valid USTT assignment for `table`:
    /// codes are unique and every required dichotomy is separated by some
    /// state variable (no critical races).
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn verify(&self, table: &FlowTable) -> Result<(), AssignmentError> {
        if self.codes.len() != table.num_states() {
            return Err(AssignmentError::WrongStateCount {
                codes: self.codes.len(),
                states: table.num_states(),
            });
        }
        for a in table.states() {
            for b in table.states() {
                if a < b && self.codes[a.0] == self.codes[b.0] {
                    return Err(AssignmentError::DuplicateCode { a, b });
                }
            }
        }
        let columns = self.variable_columns();
        for d in required_dichotomies(table) {
            if !columns.iter().any(|ones| d.separated_by(ones)) {
                return Err(AssignmentError::CriticalRace {
                    dichotomy: d.to_string(),
                });
            }
        }
        Ok(())
    }

    /// Whether some state variable separates the dichotomy. Columns are
    /// built lazily so the scan stops at the first separating variable;
    /// batch checks over many dichotomies precompute the columns once
    /// (see [`StateAssignment::verify`]).
    pub fn separates(&self, dichotomy: &Dichotomy) -> bool {
        (0..self.num_vars).any(|v| dichotomy.separated_by(&self.variable_column(v)))
    }
}

impl fmt::Display for StateAssignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, code) in self.codes.iter().enumerate() {
            writeln!(f, "{} -> {}", StateId(i), code)?;
        }
        Ok(())
    }
}

/// Produce a USTT (Tracey) state assignment for `table` with the default
/// [`AssignmentOptions`].
pub fn assign(table: &FlowTable) -> StateAssignment {
    assign_with_options(table, &AssignmentOptions::default())
}

/// Produce a USTT (Tracey) state assignment for `table` under the budgets of
/// `options`.
///
/// The code uses one variable per partition selected by
/// [`select_partitions_in`], extended if necessary so that every state
/// receives a unique code. The
/// result is valid for any budget: the partition selection covers every
/// required dichotomy (uncovered ones get dedicated partitions) and the
/// uniqueness safety net guarantees pairwise-distinct codes, so the returned
/// assignment always passes [`StateAssignment::verify`].
pub fn assign_with_options(table: &FlowTable, options: &AssignmentOptions) -> StateAssignment {
    assign_in(table, options, &mut AssignScratch::default())
}

/// Adjacency seed dichotomies from Tracey's column grouping: the states of
/// each input column cluster into transition groups (the preimages of the
/// column's next-state function, destination-keyed), and every binary split
/// of the group list by an index bit yields one seed dichotomy. Growing
/// candidates from these seeds pulls states that move together under some
/// input onto the same side of a partition, which reaches merges the
/// dichotomy-seeded orderings tend to miss on wide-column machines.
pub fn adjacency_seeds(table: &FlowTable) -> Vec<Dichotomy> {
    let n = table.num_states();
    let mut seen: fantom_boolean::collections::HashSet<Dichotomy> = Default::default();
    let mut seeds: Vec<Dichotomy> = Vec::new();
    for c in 0..table.num_columns() {
        let groups = table.column_groups(c);
        let k = groups.len();
        if k < 2 {
            continue;
        }
        let bits = (usize::BITS - (k - 1).leading_zeros()) as usize;
        for v in 0..bits {
            let mut left = StateSet::new(n as u64);
            let mut right = StateSet::new(n as u64);
            for (gi, group) in groups.iter().enumerate() {
                let side = if gi >> v & 1 == 0 {
                    &mut left
                } else {
                    &mut right
                };
                for &s in group {
                    side.insert(s.0 as u64);
                }
            }
            if left.is_empty() || right.is_empty() {
                continue;
            }
            let d = Dichotomy::from_sets(left, right);
            if seen.insert(d.clone()) {
                seeds.push(d);
            }
        }
    }
    seeds
}

/// [`assign_with_options`] with reusable `scratch` buffers — the batch entry
/// point: a synthesis `Workspace` carries one [`AssignScratch`] so the
/// dichotomy index, growth state and selection structures are allocated once
/// per worker rather than once per machine.
pub fn assign_in(
    table: &FlowTable,
    options: &AssignmentOptions,
    scratch: &mut AssignScratch,
) -> StateAssignment {
    let dichotomies = required_dichotomies(table);
    let seeds = if options.adjacency_seeding {
        adjacency_seeds(table)
    } else {
        Vec::new()
    };
    let partitions = select_partitions_in(&dichotomies, &seeds, options, scratch);
    let n = table.num_states();

    let mut columns: Vec<StateSet> = partitions.iter().map(|p| p.ones().clone()).collect();

    // Safety net: if some pair of states is still not distinguished (possible
    // only if the dichotomy generation were incomplete), add a column that
    // separates it.
    loop {
        let mut clash = None;
        'outer: for a in 0..n {
            for b in (a + 1)..n {
                let same = columns
                    .iter()
                    .all(|ones| ones.contains(a as u64) == ones.contains(b as u64));
                if same {
                    clash = Some((a, b));
                    break 'outer;
                }
            }
        }
        match clash {
            None => break,
            Some((_, b)) => {
                columns.push(StateSet::from_minterms(n as u64, [b as u64]));
            }
        }
    }

    let codes: Vec<Bits> = (0..n)
        .map(|s| Bits::from_bools(columns.iter().map(|ones| ones.contains(s as u64)).collect()))
        .collect();
    StateAssignment::from_codes(codes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fantom_flow::benchmarks;

    #[test]
    fn assignments_verify_for_all_benchmarks() {
        for table in benchmarks::all() {
            let assignment = assign(&table);
            assert_eq!(assignment.num_states(), table.num_states());
            assignment
                .verify(&table)
                .unwrap_or_else(|e| panic!("{}: {e}", table.name()));
        }
    }

    #[test]
    fn bounded_assignments_also_verify() {
        for table in benchmarks::all() {
            let assignment = assign_with_options(&table, &AssignmentOptions::bounded());
            assignment
                .verify(&table)
                .unwrap_or_else(|e| panic!("{}: {e}", table.name()));
        }
    }

    #[test]
    fn variable_counts_are_reasonable() {
        for table in benchmarks::all() {
            let assignment = assign(&table);
            let lower = (usize::BITS - (table.num_states() - 1).leading_zeros()) as usize;
            assert!(assignment.num_vars() >= lower);
            assert!(
                assignment.num_vars() <= table.num_states(),
                "{} needed {} vars for {} states",
                table.name(),
                assignment.num_vars(),
                table.num_states()
            );
        }
    }

    #[test]
    fn verify_detects_duplicate_codes() {
        let table = benchmarks::lion();
        let dup = StateAssignment::from_codes(vec![
            Bits::parse("00").unwrap(),
            Bits::parse("00").unwrap(),
            Bits::parse("10").unwrap(),
            Bits::parse("11").unwrap(),
        ]);
        assert!(matches!(
            dup.verify(&table),
            Err(AssignmentError::DuplicateCode { .. })
        ));
    }

    #[test]
    fn verify_detects_wrong_state_count() {
        let table = benchmarks::lion();
        let short = StateAssignment::from_codes(vec![Bits::parse("0").unwrap()]);
        assert!(matches!(
            short.verify(&table),
            Err(AssignmentError::WrongStateCount { .. })
        ));
    }

    #[test]
    fn verify_detects_critical_races() {
        // A straight binary encoding of lion is generally not race-free; if it
        // happens to verify, perturb expectations accordingly. We assert only
        // that `verify` is consistent with `separates` over all dichotomies.
        let table = benchmarks::lion();
        let naive = StateAssignment::from_codes(vec![
            Bits::parse("00").unwrap(),
            Bits::parse("01").unwrap(),
            Bits::parse("10").unwrap(),
            Bits::parse("11").unwrap(),
        ]);
        let dichotomies = required_dichotomies(&table);
        let all_separated = dichotomies.iter().all(|d| naive.separates(d));
        assert_eq!(naive.verify(&table).is_ok(), all_separated);
    }

    #[test]
    fn adjacency_seeds_are_valid_dichotomies() {
        for table in benchmarks::all() {
            for d in adjacency_seeds(&table) {
                assert!(!d.left().is_empty() && !d.right().is_empty());
                assert!(d.left().is_disjoint(d.right()));
                let max = d
                    .left()
                    .iter()
                    .chain(d.right().iter())
                    .max()
                    .expect("non-empty");
                assert!((max as usize) < table.num_states());
            }
        }
    }

    #[test]
    fn adjacency_seeding_preserves_validity_and_reuses_scratch() {
        let mut scratch = AssignScratch::default();
        let options = AssignmentOptions::default();
        for table in benchmarks::all() {
            let assignment = assign_in(&table, &options, &mut scratch);
            assignment
                .verify(&table)
                .unwrap_or_else(|e| panic!("{}: {e}", table.name()));
            let from_fresh = assign_with_options(&table, &options);
            assert_eq!(
                assignment.codes(),
                from_fresh.codes(),
                "{}: scratch reuse changed the assignment",
                table.name()
            );
        }
    }

    #[test]
    fn code_width_pins_hold() {
        // The small-corpus and large-suite width pins the benchmark gate
        // tracks; regressions here are code-quality regressions.
        let lion9 = assign(&benchmarks::lion9());
        assert!(
            lion9.num_vars() <= 4,
            "lion9 widened to {}",
            lion9.num_vars()
        );
        let train11 = assign(&benchmarks::train11());
        assert!(
            train11.num_vars() <= 5,
            "train11 widened to {}",
            train11.num_vars()
        );
        let bounded = AssignmentOptions::bounded();
        for (table, pin) in [
            (benchmarks::chain40(), 12),
            (benchmarks::ring44(), 12),
            (benchmarks::wide36(), 11),
        ] {
            let assignment = assign_with_options(&table, &bounded);
            assignment
                .verify(&table)
                .unwrap_or_else(|e| panic!("{}: {e}", table.name()));
            assert!(
                assignment.num_vars() <= pin,
                "{} widened to {} vars (pin {pin})",
                table.name(),
                assignment.num_vars()
            );
        }
    }

    #[test]
    fn state_code_lookup_round_trips() {
        let table = benchmarks::traffic();
        let assignment = assign(&table);
        for s in table.states() {
            let code = assignment.code(s).clone();
            assert_eq!(assignment.state_with_code(&code), Some(s));
        }
    }
}
