//! Dichotomy generation for Tracey's USTT assignment.

use std::collections::BTreeSet;
use std::fmt;

use fantom_flow::{FlowTable, StateId};

/// A dichotomy: two disjoint groups of states that some state variable must
/// separate (all of `left` on one side, all of `right` on the other).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Dichotomy {
    /// First group of states.
    pub left: BTreeSet<StateId>,
    /// Second group of states (disjoint from `left`).
    pub right: BTreeSet<StateId>,
}

impl Dichotomy {
    /// Create a dichotomy from two groups, normalising the orientation so that
    /// the group containing the smallest state id comes first.
    ///
    /// # Panics
    ///
    /// Panics if the groups overlap or either group is empty.
    pub fn new(a: impl IntoIterator<Item = StateId>, b: impl IntoIterator<Item = StateId>) -> Self {
        let a: BTreeSet<StateId> = a.into_iter().collect();
        let b: BTreeSet<StateId> = b.into_iter().collect();
        assert!(
            !a.is_empty() && !b.is_empty(),
            "dichotomy groups must be non-empty"
        );
        assert!(a.is_disjoint(&b), "dichotomy groups must be disjoint");
        let min_a = a.iter().next().expect("non-empty");
        let min_b = b.iter().next().expect("non-empty");
        if min_a <= min_b {
            Dichotomy { left: a, right: b }
        } else {
            Dichotomy { left: b, right: a }
        }
    }

    /// Try to merge two dichotomies into one that covers both, considering
    /// both orientations of `other`. Returns `None` if every orientation
    /// conflicts (some state would need to be on both sides).
    pub fn merge(&self, other: &Dichotomy) -> Option<Dichotomy> {
        let direct = merge_oriented(&self.left, &self.right, &other.left, &other.right);
        if direct.is_some() {
            return direct;
        }
        merge_oriented(&self.left, &self.right, &other.right, &other.left)
    }

    /// Whether a 0/1 partition of the states (given as the set of states coded
    /// 1) separates this dichotomy.
    pub fn separated_by(&self, ones: &BTreeSet<StateId>) -> bool {
        let left_in = self.left.iter().all(|s| ones.contains(s));
        let left_out = self.left.iter().all(|s| !ones.contains(s));
        let right_in = self.right.iter().all(|s| ones.contains(s));
        let right_out = self.right.iter().all(|s| !ones.contains(s));
        (left_in && right_out) || (left_out && right_in)
    }
}

fn merge_oriented(
    al: &BTreeSet<StateId>,
    ar: &BTreeSet<StateId>,
    bl: &BTreeSet<StateId>,
    br: &BTreeSet<StateId>,
) -> Option<Dichotomy> {
    let left: BTreeSet<StateId> = al.union(bl).copied().collect();
    let right: BTreeSet<StateId> = ar.union(br).copied().collect();
    if left.is_disjoint(&right) {
        Some(Dichotomy { left, right })
    } else {
        None
    }
}

impl fmt::Display for Dichotomy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fmt_group =
            |g: &BTreeSet<StateId>| g.iter().map(|s| s.to_string()).collect::<Vec<_>>().join("");
        write!(f, "({}; {})", fmt_group(&self.left), fmt_group(&self.right))
    }
}

/// The transition group of state `s` under column `c`: the source and
/// destination of its (specified) entry.
fn transition_group(table: &FlowTable, s: StateId, c: usize) -> Option<BTreeSet<StateId>> {
    table.next_state(s, c).map(|t| [s, t].into_iter().collect())
}

/// Generate every dichotomy a USTT assignment of `table` must satisfy:
///
/// * for each input column, every pair of disjoint transition groups
///   (`{source, destination}` sets) forms a dichotomy — this is Tracey's
///   race-freedom condition;
/// * every pair of distinct states forms a dichotomy — this forces unique
///   codes (the "unicode" part of USTT).
///
/// Dichotomies that are implied by (contained in) another generated dichotomy
/// are removed.
pub fn required_dichotomies(table: &FlowTable) -> Vec<Dichotomy> {
    let mut set: BTreeSet<Dichotomy> = BTreeSet::new();

    for c in 0..table.num_columns() {
        let groups: Vec<BTreeSet<StateId>> = table
            .states()
            .filter_map(|s| transition_group(table, s, c))
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        for (i, g1) in groups.iter().enumerate() {
            for g2 in &groups[i + 1..] {
                if g1.is_disjoint(g2) {
                    set.insert(Dichotomy::new(g1.iter().copied(), g2.iter().copied()));
                }
            }
        }
    }

    for a in table.states() {
        for b in table.states() {
            if a < b {
                set.insert(Dichotomy::new([a], [b]));
            }
        }
    }

    // Drop dichotomies subsumed by a larger one (same sides, subset-wise, in
    // either orientation).
    let all: Vec<Dichotomy> = set.into_iter().collect();
    let subsumed_by = |small: &Dichotomy, big: &Dichotomy| -> bool {
        (small.left.is_subset(&big.left) && small.right.is_subset(&big.right))
            || (small.left.is_subset(&big.right) && small.right.is_subset(&big.left))
    };
    all.iter()
        .filter(|d| {
            !all.iter()
                .any(|other| *d != other && subsumed_by(d, other) && !subsumed_by(other, d))
        })
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fantom_flow::benchmarks;

    #[test]
    fn new_normalises_orientation_and_checks_disjointness() {
        let d1 = Dichotomy::new([StateId(2)], [StateId(0)]);
        assert!(d1.left.contains(&StateId(0)));
        let d2 = Dichotomy::new([StateId(0)], [StateId(2)]);
        assert_eq!(d1, d2);
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn overlapping_groups_panic() {
        let _ = Dichotomy::new([StateId(0), StateId(1)], [StateId(1)]);
    }

    #[test]
    fn merge_respects_conflicts() {
        let a = Dichotomy::new([StateId(0)], [StateId(1)]);
        let b = Dichotomy::new([StateId(0)], [StateId(2)]);
        let merged = a.merge(&b).expect("mergeable");
        assert_eq!(merged.left, [StateId(0)].into_iter().collect());
        assert_eq!(merged.right, [StateId(1), StateId(2)].into_iter().collect());

        // 0|1 and 1|0 merge by swapping orientation into the same dichotomy.
        let c = Dichotomy::new([StateId(1)], [StateId(0)]);
        assert!(a.merge(&c).is_some());

        // (01;23) cannot merge with (02;13): every orientation conflicts.
        let d = Dichotomy::new([StateId(0), StateId(1)], [StateId(2), StateId(3)]);
        let e = Dichotomy::new([StateId(0), StateId(2)], [StateId(1), StateId(3)]);
        assert!(d.merge(&e).is_none());
    }

    #[test]
    fn separated_by_checks_both_orientations() {
        let d = Dichotomy::new([StateId(0), StateId(1)], [StateId(2)]);
        let ones: BTreeSet<StateId> = [StateId(2)].into_iter().collect();
        assert!(d.separated_by(&ones));
        let ones2: BTreeSet<StateId> = [StateId(0), StateId(1)].into_iter().collect();
        assert!(d.separated_by(&ones2));
        let bad: BTreeSet<StateId> = [StateId(1)].into_iter().collect();
        assert!(!d.separated_by(&bad));
    }

    #[test]
    fn pairwise_dichotomies_always_present_unless_subsumed() {
        let table = benchmarks::lion();
        let dichotomies = required_dichotomies(&table);
        // Every pair of states must be separated by at least one dichotomy
        // (possibly a larger, subsuming one).
        for a in table.states() {
            for b in table.states() {
                if a >= b {
                    continue;
                }
                let found = dichotomies.iter().any(|d| {
                    (d.left.contains(&a) && d.right.contains(&b))
                        || (d.left.contains(&b) && d.right.contains(&a))
                });
                assert!(found, "no dichotomy separates {a} and {b}");
            }
        }
    }

    #[test]
    fn transition_pair_dichotomies_generated() {
        // In lion, under column 00, both L0 and L2 are stable: groups {L0} and
        // {L2}, plus transitions from L1 and L3 into L0: group {L1, L0} and
        // {L3, L0}. Disjoint pairs like ({L1,L0}; {L2}) must appear (or be
        // subsumed by something larger).
        let table = benchmarks::lion();
        let l0 = table.state_by_name("L0").unwrap();
        let l1 = table.state_by_name("L1").unwrap();
        let l2 = table.state_by_name("L2").unwrap();
        let dichotomies = required_dichotomies(&table);
        let found = dichotomies.iter().any(|d| {
            (d.left.contains(&l0) && d.left.contains(&l1) && d.right.contains(&l2))
                || (d.right.contains(&l0) && d.right.contains(&l1) && d.left.contains(&l2))
        });
        assert!(found, "transition-pair dichotomy missing");
    }

    #[test]
    fn all_benchmarks_produce_dichotomies() {
        for table in benchmarks::all() {
            let d = required_dichotomies(&table);
            assert!(!d.is_empty(), "{} produced no dichotomies", table.name());
        }
    }
}
