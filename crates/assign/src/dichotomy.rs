//! Dichotomy generation for Tracey's USTT assignment.
//!
//! A dichotomy is two disjoint groups of states that some state variable must
//! separate. This module stores each group as a packed bitset
//! ([`StateSet`], one bit per state), so the hot operations of the
//! assignment engine — merge-compatibility, separation, subsumption — are
//! word-parallel AND/OR tests instead of ordered-set walks.

use std::fmt;
use std::hash::{Hash, Hasher};

use fantom_boolean::MintermSet;
use fantom_flow::{FlowTable, StateId};

/// Packed set of states (one bit per state index). An alias of the dense
/// bitset the Boolean substrate already provides for minterm sets.
pub type StateSet = MintermSet;

/// Build a [`StateSet`] over `num_states` states from an id iterator.
pub fn state_set(num_states: usize, states: impl IntoIterator<Item = StateId>) -> StateSet {
    StateSet::from_minterms(num_states as u64, states.into_iter().map(|s| s.0 as u64))
}

/// A dichotomy: two disjoint groups of states that some state variable must
/// separate (all of the left group on one side of the partition, all of the
/// right group on the other).
#[derive(Debug, Clone)]
pub struct Dichotomy {
    left: StateSet,
    right: StateSet,
}

impl PartialEq for Dichotomy {
    fn eq(&self, other: &Self) -> bool {
        self.left.same_contents(&other.left) && self.right.same_contents(&other.right)
    }
}

impl Eq for Dichotomy {}

impl Hash for Dichotomy {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.left.hash_contents(state);
        self.right.hash_contents(state);
    }
}

impl Dichotomy {
    /// Create a dichotomy from two groups, normalising the orientation so that
    /// the group containing the smallest state id comes first.
    ///
    /// # Panics
    ///
    /// Panics if the groups overlap or either group is empty.
    pub fn new(a: impl IntoIterator<Item = StateId>, b: impl IntoIterator<Item = StateId>) -> Self {
        let a: Vec<StateId> = a.into_iter().collect();
        let b: Vec<StateId> = b.into_iter().collect();
        let cap = a
            .iter()
            .chain(&b)
            .map(|s| s.0 + 1)
            .max()
            .expect("dichotomy groups must be non-empty");
        Self::from_sets(state_set(cap, a), state_set(cap, b))
    }

    /// Create a dichotomy from two packed groups, normalising the orientation.
    ///
    /// # Panics
    ///
    /// Panics if the groups overlap or either group is empty.
    pub fn from_sets(a: StateSet, b: StateSet) -> Self {
        assert!(
            !a.is_empty() && !b.is_empty(),
            "dichotomy groups must be non-empty"
        );
        assert!(a.is_disjoint(&b), "dichotomy groups must be disjoint");
        let min_a = a.first().expect("non-empty");
        let min_b = b.first().expect("non-empty");
        if min_a <= min_b {
            Dichotomy { left: a, right: b }
        } else {
            Dichotomy { left: b, right: a }
        }
    }

    /// Create a dichotomy from two packed groups **without** orientation
    /// normalisation. The candidate-growth engine absorbs dichotomies into a
    /// seed whose orientation must stay fixed (its `right()` side is the
    /// partition's 1-coded set), so rebuilding a grown candidate must not
    /// flip the sides the way [`Dichotomy::from_sets`] would.
    pub(crate) fn from_oriented_sets(left: StateSet, right: StateSet) -> Self {
        debug_assert!(!left.is_empty() && !right.is_empty());
        debug_assert!(left.is_disjoint(&right));
        Dichotomy { left, right }
    }

    /// The group on the 0 side of the partition.
    pub fn left(&self) -> &StateSet {
        &self.left
    }

    /// The group on the 1 side of the partition.
    pub fn right(&self) -> &StateSet {
        &self.right
    }

    /// Iterate over the left group as state ids.
    pub fn left_states(&self) -> impl Iterator<Item = StateId> + '_ {
        self.left.iter().map(|s| StateId(s as usize))
    }

    /// Iterate over the right group as state ids.
    pub fn right_states(&self) -> impl Iterator<Item = StateId> + '_ {
        self.right.iter().map(|s| StateId(s as usize))
    }

    /// Whether this dichotomy constrains the pair `{a, b}` onto opposite
    /// sides.
    pub fn separates_pair(&self, a: StateId, b: StateId) -> bool {
        (self.left.contains(a.0 as u64) && self.right.contains(b.0 as u64))
            || (self.left.contains(b.0 as u64) && self.right.contains(a.0 as u64))
    }

    /// Try to merge two dichotomies into one that covers both, considering
    /// both orientations of `other`. Returns `None` if every orientation
    /// conflicts (some state would need to be on both sides).
    pub fn merge(&self, other: &Dichotomy) -> Option<Dichotomy> {
        let mut out = self.clone();
        out.try_absorb(other).then_some(out)
    }

    /// In-place [`Dichotomy::merge`]: absorb `other` if some orientation is
    /// conflict-free, preferring the direct orientation. Returns whether the
    /// merge happened.
    pub fn try_absorb(&mut self, other: &Dichotomy) -> bool {
        // Direct orientation: left grows by other.left, right by other.right.
        // Disjointness of the result needs only the two cross intersections
        // to be empty (each dichotomy is internally disjoint already).
        if self.left.is_disjoint(&other.right) && self.right.is_disjoint(&other.left) {
            self.left.union_with(&other.left);
            self.right.union_with(&other.right);
            return true;
        }
        // Flipped orientation: other's right joins our left and vice versa.
        if self.left.is_disjoint(&other.left) && self.right.is_disjoint(&other.right) {
            self.left.union_with(&other.right);
            self.right.union_with(&other.left);
            return true;
        }
        false
    }

    /// Whether a 0/1 partition of the states (given as the set of states coded
    /// 1) separates this dichotomy.
    pub fn separated_by(&self, ones: &StateSet) -> bool {
        (self.left.is_subset(ones) && self.right.is_disjoint(ones))
            || (self.left.is_disjoint(ones) && self.right.is_subset(ones))
    }

    /// Whether this dichotomy is implied by `big`: separating `big` also
    /// separates `self` (subset-wise, in either orientation).
    pub fn subsumed_by(&self, big: &Dichotomy) -> bool {
        (self.left.is_subset(&big.left) && self.right.is_subset(&big.right))
            || (self.left.is_subset(&big.right) && self.right.is_subset(&big.left))
    }
}

impl fmt::Display for Dichotomy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fmt_group = |g: &StateSet| {
            g.iter()
                .map(|s| StateId(s as usize).to_string())
                .collect::<Vec<_>>()
                .join("")
        };
        write!(f, "({}; {})", fmt_group(&self.left), fmt_group(&self.right))
    }
}

/// Generate every dichotomy a USTT assignment of `table` must satisfy:
///
/// * for each input column, every pair of disjoint transition groups
///   (`{source, destination}` sets) forms a dichotomy — this is Tracey's
///   race-freedom condition;
/// * every pair of distinct states forms a dichotomy — this forces unique
///   codes (the "unicode" part of USTT).
///
/// Duplicates are removed up front (hash-set dedup on the packed groups) and
/// dichotomies implied by (contained in) another generated dichotomy are
/// filtered out, so the covering engine only ever sees the irredundant
/// requirement list.
pub fn required_dichotomies(table: &FlowTable) -> Vec<Dichotomy> {
    let n = table.num_states();
    let mut seen: fantom_boolean::collections::HashSet<Dichotomy> = Default::default();
    let mut all: Vec<Dichotomy> = Vec::new();
    let mut push = |d: Dichotomy, all: &mut Vec<Dichotomy>| {
        if seen.insert(d.clone()) {
            all.push(d);
        }
    };

    for c in 0..table.num_columns() {
        // Transition groups {source, destination} of the column, deduplicated
        // by their (sorted) endpoint pair.
        let mut group_keys: fantom_boolean::collections::HashSet<(usize, usize)> =
            Default::default();
        let mut groups: Vec<StateSet> = Vec::new();
        for s in table.states() {
            if let Some(t) = table.next_state(s, c) {
                let key = (s.0.min(t.0), s.0.max(t.0));
                if group_keys.insert(key) {
                    groups.push(state_set(n, [s, t]));
                }
            }
        }
        for (i, g1) in groups.iter().enumerate() {
            for g2 in &groups[i + 1..] {
                if g1.is_disjoint(g2) {
                    push(Dichotomy::from_sets(g1.clone(), g2.clone()), &mut all);
                }
            }
        }
    }

    for a in table.states() {
        for b in table.states() {
            if a < b {
                push(
                    Dichotomy::from_sets(state_set(n, [a]), state_set(n, [b])),
                    &mut all,
                );
            }
        }
    }

    // Drop dichotomies strictly subsumed by a larger one: separating the
    // larger dichotomy separates them for free. A subsumer must contain
    // every support state of the subsumee, so the candidates for each
    // dichotomy are exactly the entries of its shortest support-state
    // posting list — an inverted index that replaces the all-pairs
    // subsumption scan (quadratic in the raw dichotomy count, the dominant
    // cost of generation on 40-state tables) with a near-linear pass.
    let mut by_state: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (i, d) in all.iter().enumerate() {
        for s in d.left().iter().chain(d.right().iter()) {
            by_state[s as usize].push(i as u32);
        }
    }
    all.iter()
        .enumerate()
        .filter(|(i, d)| {
            let shortest = d
                .left()
                .iter()
                .chain(d.right().iter())
                .map(|s| &by_state[s as usize])
                .min_by_key(|list| list.len())
                .expect("dichotomy groups are non-empty");
            !shortest.iter().any(|&j| {
                let other = &all[j as usize];
                j as usize != *i && d.subsumed_by(other) && !other.subsumed_by(d)
            })
        })
        .map(|(_, d)| d.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fantom_flow::benchmarks;

    #[test]
    fn new_normalises_orientation_and_checks_disjointness() {
        let d1 = Dichotomy::new([StateId(2)], [StateId(0)]);
        assert!(d1.left().contains(0));
        let d2 = Dichotomy::new([StateId(0)], [StateId(2)]);
        assert_eq!(d1, d2);
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn overlapping_groups_panic() {
        let _ = Dichotomy::new([StateId(0), StateId(1)], [StateId(1)]);
    }

    #[test]
    fn merge_respects_conflicts() {
        let a = Dichotomy::new([StateId(0)], [StateId(1)]);
        let b = Dichotomy::new([StateId(0)], [StateId(2)]);
        let merged = a.merge(&b).expect("mergeable");
        assert_eq!(merged.left_states().collect::<Vec<_>>(), vec![StateId(0)]);
        assert_eq!(
            merged.right_states().collect::<Vec<_>>(),
            vec![StateId(1), StateId(2)]
        );

        // 0|1 and 1|0 merge by swapping orientation into the same dichotomy.
        let c = Dichotomy::new([StateId(1)], [StateId(0)]);
        assert!(a.merge(&c).is_some());

        // (01;23) cannot merge with (02;13): every orientation conflicts.
        let d = Dichotomy::new([StateId(0), StateId(1)], [StateId(2), StateId(3)]);
        let e = Dichotomy::new([StateId(0), StateId(2)], [StateId(1), StateId(3)]);
        assert!(d.merge(&e).is_none());
    }

    #[test]
    fn absorb_matches_merge() {
        let a = Dichotomy::new([StateId(0)], [StateId(1)]);
        let b = Dichotomy::new([StateId(2)], [StateId(3)]);
        let mut inplace = a.clone();
        assert!(inplace.try_absorb(&b));
        assert_eq!(Some(inplace), a.merge(&b));
    }

    #[test]
    fn separated_by_checks_both_orientations() {
        let d = Dichotomy::new([StateId(0), StateId(1)], [StateId(2)]);
        assert!(d.separated_by(&state_set(3, [StateId(2)])));
        assert!(d.separated_by(&state_set(3, [StateId(0), StateId(1)])));
        assert!(!d.separated_by(&state_set(3, [StateId(1)])));
        // A partition assigning a free state to the 1 side still separates.
        let free = Dichotomy::new([StateId(0)], [StateId(2)]);
        assert!(free.separated_by(&state_set(3, [StateId(1), StateId(2)])));
    }

    #[test]
    fn subsumption_is_subset_wise() {
        let small = Dichotomy::new([StateId(0)], [StateId(2)]);
        let big = Dichotomy::new([StateId(0), StateId(1)], [StateId(2), StateId(3)]);
        let flipped = Dichotomy::new([StateId(2), StateId(3)], [StateId(0), StateId(1)]);
        assert!(small.subsumed_by(&big));
        assert!(small.subsumed_by(&flipped));
        assert!(!big.subsumed_by(&small));
    }

    #[test]
    fn pairwise_dichotomies_always_present_unless_subsumed() {
        let table = benchmarks::lion();
        let dichotomies = required_dichotomies(&table);
        // Every pair of states must be separated by at least one dichotomy
        // (possibly a larger, subsuming one).
        for a in table.states() {
            for b in table.states() {
                if a >= b {
                    continue;
                }
                let found = dichotomies.iter().any(|d| d.separates_pair(a, b));
                assert!(found, "no dichotomy separates {a} and {b}");
            }
        }
    }

    #[test]
    fn transition_pair_dichotomies_generated() {
        // In lion, under column 00, both L0 and L2 are stable: groups {L0} and
        // {L2}, plus transitions from L1 and L3 into L0: group {L1, L0} and
        // {L3, L0}. Disjoint pairs like ({L1,L0}; {L2}) must appear (or be
        // subsumed by something larger).
        let table = benchmarks::lion();
        let l0 = table.state_by_name("L0").unwrap();
        let l1 = table.state_by_name("L1").unwrap();
        let l2 = table.state_by_name("L2").unwrap();
        let dichotomies = required_dichotomies(&table);
        let contains = |set: &StateSet, s: StateId| set.contains(s.0 as u64);
        let found = dichotomies.iter().any(|d| {
            (contains(d.left(), l0) && contains(d.left(), l1) && contains(d.right(), l2))
                || (contains(d.right(), l0) && contains(d.right(), l1) && contains(d.left(), l2))
        });
        assert!(found, "transition-pair dichotomy missing");
    }

    #[test]
    fn all_benchmarks_produce_dichotomies() {
        for table in benchmarks::all() {
            let d = required_dichotomies(&table);
            assert!(!d.is_empty(), "{} produced no dichotomies", table.name());
        }
    }
}
