//! Selection of a small set of state-variable partitions covering every
//! required dichotomy.

use std::collections::BTreeSet;

use fantom_flow::StateId;

use crate::dichotomy::Dichotomy;

/// A candidate state variable, represented as a merged dichotomy: states in
/// `left` are coded 0, states in `right` are coded 1, unconstrained states may
/// take either value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Merged dichotomy describing the constrained states.
    pub dichotomy: Dichotomy,
    /// Indices (into the dichotomy list) of the dichotomies this partition covers.
    pub covers: Vec<usize>,
}

impl Partition {
    /// The set of states coded 1 by this partition (the `right` side).
    pub fn ones(&self) -> BTreeSet<StateId> {
        self.dichotomy.right.clone()
    }
}

/// Build candidate partitions by greedily merging compatible dichotomies,
/// seeding one candidate from every dichotomy. Each candidate records which
/// dichotomies it separates.
fn candidate_partitions(dichotomies: &[Dichotomy]) -> Vec<Partition> {
    let mut candidates = Vec::new();
    for (seed_idx, seed) in dichotomies.iter().enumerate() {
        let mut merged = seed.clone();
        // Greedily absorb the remaining dichotomies (two passes so ordering
        // matters less).
        for _ in 0..2 {
            for other in dichotomies {
                if let Some(m) = merged.merge(other) {
                    merged = m;
                }
            }
        }
        let ones = merged.right.clone();
        let covers: Vec<usize> = dichotomies
            .iter()
            .enumerate()
            .filter(|(_, d)| d.separated_by(&ones))
            .map(|(i, _)| i)
            .collect();
        debug_assert!(covers.contains(&seed_idx));
        let partition = Partition {
            dichotomy: merged,
            covers,
        };
        if !candidates.contains(&partition) {
            candidates.push(partition);
        }
    }
    candidates
}

/// Select a small set of partitions (state variables) such that every
/// dichotomy is separated by at least one selected partition.
///
/// An exact search over the candidate set is attempted for increasing variable
/// counts (the benchmark machines need at most a handful of variables); a
/// greedy set cover is used as a fallback for larger instances.
pub fn select_partitions(dichotomies: &[Dichotomy]) -> Vec<Partition> {
    if dichotomies.is_empty() {
        return Vec::new();
    }
    let candidates = candidate_partitions(dichotomies);
    let num_dichotomies = dichotomies.len();

    // Exact search for small candidate sets.
    if candidates.len() <= 24 {
        for k in 1..=candidates.len() {
            if let Some(found) = search(&candidates, num_dichotomies, k) {
                return found;
            }
        }
    }
    greedy(&candidates, num_dichotomies)
}

fn search(candidates: &[Partition], num_dichotomies: usize, k: usize) -> Option<Vec<Partition>> {
    fn rec(
        candidates: &[Partition],
        num_dichotomies: usize,
        k: usize,
        start: usize,
        chosen: &mut Vec<usize>,
    ) -> Option<Vec<usize>> {
        if chosen.len() == k {
            let mut covered = vec![false; num_dichotomies];
            for &c in chosen.iter() {
                for &d in &candidates[c].covers {
                    covered[d] = true;
                }
            }
            return covered.iter().all(|&b| b).then(|| chosen.clone());
        }
        for i in start..candidates.len() {
            chosen.push(i);
            if let Some(res) = rec(candidates, num_dichotomies, k, i + 1, chosen) {
                return Some(res);
            }
            chosen.pop();
        }
        None
    }
    let mut chosen = Vec::new();
    rec(candidates, num_dichotomies, k, 0, &mut chosen)
        .map(|idx| idx.into_iter().map(|i| candidates[i].clone()).collect())
}

fn greedy(candidates: &[Partition], num_dichotomies: usize) -> Vec<Partition> {
    let mut uncovered: BTreeSet<usize> = (0..num_dichotomies).collect();
    let mut chosen = Vec::new();
    while !uncovered.is_empty() {
        let best = candidates
            .iter()
            .max_by_key(|p| p.covers.iter().filter(|d| uncovered.contains(d)).count());
        let Some(best) = best else { break };
        let gain = best.covers.iter().filter(|d| uncovered.contains(d)).count();
        if gain == 0 {
            break;
        }
        for d in &best.covers {
            uncovered.remove(d);
        }
        chosen.push(best.clone());
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dichotomy::required_dichotomies;
    use fantom_flow::benchmarks;

    fn check_all_covered(dichotomies: &[Dichotomy], partitions: &[Partition]) {
        for (i, d) in dichotomies.iter().enumerate() {
            let covered = partitions.iter().any(|p| d.separated_by(&p.ones()));
            assert!(covered, "dichotomy {i} ({d}) not covered");
        }
    }

    #[test]
    fn partitions_cover_all_dichotomies_for_every_benchmark() {
        for table in benchmarks::all() {
            let dichotomies = required_dichotomies(&table);
            let partitions = select_partitions(&dichotomies);
            check_all_covered(&dichotomies, &partitions);
        }
    }

    #[test]
    fn variable_count_is_at_least_ceil_log2_states() {
        for table in benchmarks::all() {
            let dichotomies = required_dichotomies(&table);
            let partitions = select_partitions(&dichotomies);
            let lower = (usize::BITS - (table.num_states() - 1).leading_zeros()) as usize;
            assert!(
                partitions.len() >= lower,
                "{}: {} variables cannot encode {} states",
                table.name(),
                partitions.len(),
                table.num_states()
            );
            // And it should never need more variables than states.
            assert!(partitions.len() <= table.num_states());
        }
    }

    #[test]
    fn empty_dichotomy_list_needs_no_partitions() {
        assert!(select_partitions(&[]).is_empty());
    }

    #[test]
    fn simple_two_state_case_needs_one_variable() {
        let d = vec![Dichotomy::new([StateId(0)], [StateId(1)])];
        let partitions = select_partitions(&d);
        assert_eq!(partitions.len(), 1);
    }
}
