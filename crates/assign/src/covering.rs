//! Selection of a small set of state-variable partitions covering every
//! required dichotomy.
//!
//! This is a set cover over separation constraints: each candidate partition
//! is a maximal merge of compatible dichotomies, and the selected partitions
//! become the state variables. Candidate generation grows one candidate per
//! (dichotomy, seed ordering) pair by word-parallel absorption, selection is
//! an exact search on small candidate sets (under a node budget) or a greedy
//! cover followed by local-search refinement (drop redundant partitions,
//! replace partition pairs by a single candidate), and any dichotomy the
//! budgets left uncovered receives a dedicated partition — so the result
//! always covers every dichotomy, whatever the [`AssignmentOptions`].

use fantom_boolean::MintermSet;

use crate::dichotomy::{Dichotomy, StateSet};
use crate::options::AssignmentOptions;

/// A candidate state variable, represented as a merged dichotomy: states in
/// its left group are coded 0, states in its right group are coded 1,
/// unconstrained states may take either value (and default to 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Merged dichotomy describing the constrained states.
    dichotomy: Dichotomy,
    /// Packed set of indices (into the dichotomy list) this partition covers.
    covers: MintermSet,
}

impl Partition {
    /// Build a partition from a merged dichotomy, recording which of
    /// `dichotomies` it separates.
    fn new(dichotomy: Dichotomy, dichotomies: &[Dichotomy]) -> Self {
        let ones = dichotomy.right();
        let covers = MintermSet::from_minterms(
            dichotomies.len() as u64,
            dichotomies
                .iter()
                .enumerate()
                .filter(|(_, d)| d.separated_by(ones))
                .map(|(i, _)| i as u64),
        );
        Partition { dichotomy, covers }
    }

    /// The merged dichotomy backing this partition.
    pub fn dichotomy(&self) -> &Dichotomy {
        &self.dichotomy
    }

    /// The set of states coded 1 by this partition (the right side of the
    /// merged dichotomy).
    pub fn ones(&self) -> &StateSet {
        self.dichotomy.right()
    }

    /// Packed indices of the dichotomies this partition separates.
    pub fn covers(&self) -> &MintermSet {
        &self.covers
    }
}

/// The seed ordering for candidate growth: each variant visits the dichotomy
/// list in a different deterministic order, so the greedy absorption produces
/// different (and collectively more diverse) maximal merges.
fn seed_order(num: usize, variant: usize) -> Vec<usize> {
    match variant {
        0 => (0..num).collect(),
        1 => (0..num).rev().collect(),
        // Rotations by a fixed prime stride: decorrelated from both the
        // generation order and each other.
        v => {
            let offset = (v * 7919) % num.max(1);
            (0..num).map(|i| (i + offset) % num).collect()
        }
    }
}

/// Build candidate partitions by greedily absorbing compatible dichotomies,
/// seeding one candidate from every dichotomy under every seed ordering.
/// Candidates are deduplicated and capped at
/// `options.max_candidate_partitions`.
fn candidate_partitions(dichotomies: &[Dichotomy], options: &AssignmentOptions) -> Vec<Partition> {
    let mut seen: fantom_boolean::collections::HashSet<Dichotomy> = Default::default();
    let mut candidates: Vec<Partition> = Vec::new();
    'orderings: for variant in 0..options.seed_orderings.max(1) {
        let order = seed_order(dichotomies.len(), variant);
        for (pos, &seed) in order.iter().enumerate() {
            if candidates.len() >= options.max_candidate_partitions {
                break 'orderings;
            }
            let mut merged = dichotomies[seed].clone();
            // Two wrap-around passes so absorptions enabled by later merges
            // still happen regardless of the seed's position.
            for _ in 0..2 {
                for &j in order[pos..].iter().chain(&order[..pos]) {
                    if j != seed {
                        merged.try_absorb(&dichotomies[j]);
                    }
                }
            }
            if seen.insert(merged.clone()) {
                candidates.push(Partition::new(merged, dichotomies));
            }
        }
    }
    candidates
}

/// Select a small set of partitions (state variables) such that every
/// dichotomy is separated by at least one selected partition, using the
/// default [`AssignmentOptions`].
pub fn select_partitions(dichotomies: &[Dichotomy]) -> Vec<Partition> {
    select_partitions_with(dichotomies, &AssignmentOptions::default())
}

/// Select a covering set of partitions under the budgets of `options`.
///
/// Small candidate sets get an exact minimum-cover search (bounded by
/// `exact_node_budget`); everything else — and exact searches that blow the
/// budget — goes through the greedy cover plus `refine_passes` rounds of
/// local search. Dichotomies the budgets left uncovered each receive their
/// own dedicated partition, so the result always covers the whole list.
pub fn select_partitions_with(
    dichotomies: &[Dichotomy],
    options: &AssignmentOptions,
) -> Vec<Partition> {
    if dichotomies.is_empty() {
        return Vec::new();
    }
    let candidates = candidate_partitions(dichotomies, options);
    let num = dichotomies.len();

    let mut best: Option<Vec<usize>> = None;
    if candidates.len() <= options.exact_max_candidates {
        best = exact_cover(&candidates, num, options.exact_node_budget);
    }
    if best.is_none() {
        let greedy_pick = greedy_cover(&candidates, num);
        best = Some(refine_cover(
            greedy_pick,
            &candidates,
            num,
            options.refine_passes,
        ));
    }
    let chosen = best.expect("some selection path ran");

    let mut selected: Vec<Partition> = chosen.iter().map(|&i| candidates[i].clone()).collect();

    // Guaranteed-coverage fallback: whatever the budgets cut, every dichotomy
    // ends up separated — in the worst case by a partition of its own.
    let mut covered = MintermSet::new(num as u64);
    for p in &selected {
        covered.union_with(&p.covers);
    }
    for (i, d) in dichotomies.iter().enumerate() {
        if !covered.contains(i as u64) {
            let p = Partition::new(d.clone(), dichotomies);
            covered.union_with(&p.covers);
            selected.push(p);
        }
    }
    selected
}

/// Exact minimum cover over the candidate set: try sizes `1..` and return the
/// first size that admits a cover. Returns `None` when the node budget is
/// exhausted before an answer is certain.
fn exact_cover(candidates: &[Partition], num: usize, node_budget: u64) -> Option<Vec<usize>> {
    // Big candidates first: covers are found earlier and the size bound
    // prunes harder.
    let mut order: Vec<usize> = (0..candidates.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(candidates[i].covers.len()));
    let mut nodes = 0u64;
    let mut undo = Vec::new();
    for k in 1..=candidates.len() {
        let mut uncovered = MintermSet::from_minterms(num as u64, 0..num as u64);
        let mut chosen = Vec::new();
        match exact_rec(
            candidates,
            &order,
            k,
            0,
            &mut uncovered,
            &mut chosen,
            &mut undo,
            &mut nodes,
            node_budget,
        ) {
            ExactOutcome::Found(sol) => return Some(sol),
            ExactOutcome::Exhausted => continue,
            ExactOutcome::OutOfBudget => return None,
        }
    }
    None
}

enum ExactOutcome {
    Found(Vec<usize>),
    Exhausted,
    OutOfBudget,
}

#[allow(clippy::too_many_arguments)]
fn exact_rec(
    candidates: &[Partition],
    order: &[usize],
    k: usize,
    start: usize,
    uncovered: &mut MintermSet,
    chosen: &mut Vec<usize>,
    undo: &mut Vec<(u32, u64)>,
    nodes: &mut u64,
    node_budget: u64,
) -> ExactOutcome {
    *nodes += 1;
    if *nodes > node_budget {
        return ExactOutcome::OutOfBudget;
    }
    if uncovered.is_empty() {
        return ExactOutcome::Found(chosen.clone());
    }
    if chosen.len() == k {
        return ExactOutcome::Exhausted;
    }
    let picks_left = k - chosen.len();
    for pos in start..candidates.len() {
        // Not enough candidates left to reach size k.
        if candidates.len() - pos < picks_left {
            break;
        }
        let cand = order[pos];
        if candidates[cand].covers.intersection_count(uncovered) == 0 {
            continue;
        }
        // Mutate in place with a word-level undo record: the search explores
        // up to `node_budget` nodes, so per-node set clones would be pure
        // allocator traffic.
        let undo_mark = undo.len();
        uncovered.subtract_with_undo(&candidates[cand].covers, undo);
        chosen.push(cand);
        let outcome = exact_rec(
            candidates,
            order,
            k,
            pos + 1,
            uncovered,
            chosen,
            undo,
            nodes,
            node_budget,
        );
        match outcome {
            ExactOutcome::Exhausted => {}
            other => return other,
        }
        chosen.pop();
        uncovered.undo_subtract(&undo[undo_mark..]);
        undo.truncate(undo_mark);
    }
    ExactOutcome::Exhausted
}

/// Greedy set cover: repeatedly take the candidate separating the most
/// still-uncovered dichotomies (ties to the earlier candidate).
fn greedy_cover(candidates: &[Partition], num: usize) -> Vec<usize> {
    let mut uncovered = MintermSet::from_minterms(num as u64, 0..num as u64);
    let mut chosen: Vec<usize> = Vec::new();
    while !uncovered.is_empty() {
        let mut best: Option<(usize, usize)> = None;
        for (i, p) in candidates.iter().enumerate() {
            let gain = p.covers.intersection_count(&uncovered);
            if gain > 0 && best.map_or(true, |(_, g)| gain > g) {
                best = Some((i, gain));
            }
        }
        let Some((pick, _)) = best else { break };
        uncovered.subtract(&candidates[pick].covers);
        chosen.push(pick);
    }
    chosen
}

/// Local-search refinement of a cover: drop partitions that no longer cover
/// anything uniquely, and replace pairs of partitions by a single candidate
/// that covers everything only they covered. Each successful replacement
/// shrinks the code by one variable; the loop runs until a pass changes
/// nothing or `passes` rounds have run.
fn refine_cover(
    mut selected: Vec<usize>,
    candidates: &[Partition],
    num: usize,
    passes: usize,
) -> Vec<usize> {
    for _ in 0..passes {
        let mut changed = false;

        // Drop to fixpoint: a partition every one of whose dichotomies is
        // also covered elsewhere is redundant.
        let mut counts = coverage_counts(&selected, candidates, num);
        let mut i = 0;
        while i < selected.len() {
            let covers = &candidates[selected[i]].covers;
            let unique = covers.iter().any(|d| counts[d as usize] == 1);
            if !unique && selected.len() > 1 {
                for d in covers.iter() {
                    counts[d as usize] -= 1;
                }
                selected.remove(i);
                changed = true;
            } else {
                i += 1;
            }
        }

        // Consolidate to fixpoint: if one unselected candidate covers
        // everything partitions i and j cover uniquely, it can replace both
        // (every replacement shrinks the code by one variable, so this loop
        // runs at most `selected.len()` times).
        'consolidate: loop {
            let counts = coverage_counts(&selected, candidates, num);
            for i in 0..selected.len() {
                for j in (i + 1)..selected.len() {
                    // Everything that loses its last cover when BOTH i and j
                    // go: dichotomies whose full coverage comes from the pair.
                    let ci = &candidates[selected[i]].covers;
                    let cj = &candidates[selected[j]].covers;
                    let mut need = MintermSet::new(num as u64);
                    for d in ci.iter().chain(cj.iter()) {
                        let pair_coverage =
                            usize::from(ci.contains(d)) + usize::from(cj.contains(d));
                        if counts[d as usize] as usize == pair_coverage {
                            need.insert(d);
                        }
                    }
                    let replacement = (0..candidates.len())
                        .find(|r| !selected.contains(r) && need.is_subset(&candidates[*r].covers));
                    if let Some(r) = replacement {
                        // Remove j first so index i stays valid.
                        selected.remove(j);
                        selected.remove(i);
                        selected.push(r);
                        changed = true;
                        continue 'consolidate;
                    }
                }
            }
            break;
        }

        if !changed {
            break;
        }
    }
    selected
}

/// How many selected partitions cover each dichotomy.
fn coverage_counts(selected: &[usize], candidates: &[Partition], num: usize) -> Vec<u32> {
    let mut counts = vec![0u32; num];
    for &s in selected {
        for d in candidates[s].covers.iter() {
            counts[d as usize] += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dichotomy::required_dichotomies;
    use fantom_flow::{benchmarks, StateId};

    fn check_all_covered(dichotomies: &[Dichotomy], partitions: &[Partition]) {
        for (i, d) in dichotomies.iter().enumerate() {
            let covered = partitions.iter().any(|p| d.separated_by(p.ones()));
            assert!(covered, "dichotomy {i} ({d}) not covered");
        }
    }

    #[test]
    fn partitions_cover_all_dichotomies_for_every_benchmark() {
        for table in benchmarks::all() {
            let dichotomies = required_dichotomies(&table);
            let partitions = select_partitions(&dichotomies);
            check_all_covered(&dichotomies, &partitions);
        }
    }

    #[test]
    fn every_budget_still_covers_everything() {
        let brutal = AssignmentOptions {
            max_candidate_partitions: 1,
            seed_orderings: 1,
            refine_passes: 0,
            exact_max_candidates: 0,
            exact_node_budget: 0,
        };
        for table in benchmarks::all() {
            let dichotomies = required_dichotomies(&table);
            let partitions = select_partitions_with(&dichotomies, &brutal);
            check_all_covered(&dichotomies, &partitions);
        }
    }

    #[test]
    fn variable_count_is_at_least_ceil_log2_states() {
        for table in benchmarks::all() {
            let dichotomies = required_dichotomies(&table);
            let partitions = select_partitions(&dichotomies);
            let lower = (usize::BITS - (table.num_states() - 1).leading_zeros()) as usize;
            assert!(
                partitions.len() >= lower,
                "{}: {} variables cannot encode {} states",
                table.name(),
                partitions.len(),
                table.num_states()
            );
            // And it should never need more variables than states.
            assert!(partitions.len() <= table.num_states());
        }
    }

    #[test]
    fn refinement_never_grows_the_greedy_cover() {
        for table in benchmarks::all() {
            let dichotomies = required_dichotomies(&table);
            let no_exact = AssignmentOptions {
                exact_max_candidates: 0,
                refine_passes: 0,
                ..AssignmentOptions::default()
            };
            let refined_opts = AssignmentOptions {
                exact_max_candidates: 0,
                ..AssignmentOptions::default()
            };
            let unrefined = select_partitions_with(&dichotomies, &no_exact);
            let refined = select_partitions_with(&dichotomies, &refined_opts);
            assert!(
                refined.len() <= unrefined.len(),
                "{}: refinement grew the cover {} -> {}",
                table.name(),
                unrefined.len(),
                refined.len()
            );
            check_all_covered(&dichotomies, &refined);
        }
    }

    #[test]
    fn empty_dichotomy_list_needs_no_partitions() {
        assert!(select_partitions(&[]).is_empty());
    }

    #[test]
    fn simple_two_state_case_needs_one_variable() {
        let d = vec![Dichotomy::new([StateId(0)], [StateId(1)])];
        let partitions = select_partitions(&d);
        assert_eq!(partitions.len(), 1);
    }
}
