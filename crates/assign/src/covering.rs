//! Selection of a small set of state-variable partitions covering every
//! required dichotomy.
//!
//! This is a set cover over separation constraints: each candidate partition
//! is a maximal merge of compatible dichotomies, and the selected partitions
//! become the state variables. The engine is built around the inverted
//! **dichotomy index** of [`crate::index`], shared by every seed ordering:
//!
//! * **candidate growth** seeds one candidate per (dichotomy, ordering) pair
//!   — plus one per adjacency-cluster seed, see
//!   [`crate::assignment::adjacency_seeds`] — and absorbs compatible
//!   dichotomies in the ordering's sequence. Compatibility is read from
//!   incrementally maintained blocked-id bitsets instead of per-dichotomy
//!   set probes, so a sweep enumerates only the ids still absorbable
//!   (word-granular), and each candidate's `covers` set falls out of the
//!   growth itself instead of a full separation rescan per candidate;
//! * **selection** is an exact minimum-cover search on small candidate sets
//!   (under a node budget) or a lazy-max greedy cover followed by
//!   local-search refinement (drop redundant partitions, replace partition
//!   pairs by a single candidate);
//! * any dichotomy the budgets left uncovered receives a dedicated partition
//!   — so the result always covers every dichotomy, whatever the
//!   [`AssignmentOptions`].
//!
//! All growth and selection buffers live in an [`AssignScratch`], so batch
//! callers (the synthesis service's `Workspace`) reuse the allocations
//! across calls.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use fantom_boolean::MintermSet;

use crate::dichotomy::{Dichotomy, StateSet};
use crate::index::{DichotomyIndex, GrowthScratch};
use crate::options::AssignmentOptions;

/// A candidate state variable, represented as a merged dichotomy: states in
/// its left group are coded 0, states in its right group are coded 1,
/// unconstrained states may take either value (and default to 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Merged dichotomy describing the constrained states.
    dichotomy: Dichotomy,
    /// Packed set of indices (into the dichotomy list) this partition covers.
    covers: MintermSet,
}

impl Partition {
    /// Build a partition from a merged dichotomy, recording which of
    /// `dichotomies` it separates by a full rescan. The growth engine
    /// maintains `covers` incrementally and uses [`Partition::from_parts`];
    /// this constructor remains for the dedicated-partition fallback (and as
    /// the debug-mode oracle for the incremental sets).
    fn new(dichotomy: Dichotomy, dichotomies: &[Dichotomy]) -> Self {
        let ones = dichotomy.right();
        let covers = MintermSet::from_minterms(
            dichotomies.len() as u64,
            dichotomies
                .iter()
                .enumerate()
                .filter(|(_, d)| d.separated_by(ones))
                .map(|(i, _)| i as u64),
        );
        Partition { dichotomy, covers }
    }

    /// Build a partition from a merged dichotomy and its already-known
    /// coverage set.
    fn from_parts(dichotomy: Dichotomy, covers: MintermSet) -> Self {
        Partition { dichotomy, covers }
    }

    /// The merged dichotomy backing this partition.
    pub fn dichotomy(&self) -> &Dichotomy {
        &self.dichotomy
    }

    /// The set of states coded 1 by this partition (the right side of the
    /// merged dichotomy).
    pub fn ones(&self) -> &StateSet {
        self.dichotomy.right()
    }

    /// Packed indices of the dichotomies this partition separates.
    pub fn covers(&self) -> &MintermSet {
        &self.covers
    }
}

/// Reusable buffers for the assignment engine: the shared dichotomy index,
/// the per-candidate growth state, dedup set, candidate pool, and the
/// selection structures (greedy heap, exact-search undo log). A `Workspace`
/// in the synthesis service holds one of these so a batch of assignments
/// allocates once.
#[derive(Debug, Default)]
pub struct AssignScratch {
    index: DichotomyIndex,
    growth: GrowthScratch,
    seen: fantom_boolean::collections::HashSet<Dichotomy>,
    candidates: Vec<Partition>,
    heap: BinaryHeap<(usize, Reverse<usize>)>,
    undo: Vec<(u32, u64)>,
}

/// The sequence in which a growing candidate visits the dichotomy list. Each
/// ordering absorbs in a different order, so the greedy merges produce
/// different (and collectively more diverse) maximal candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SeedOrder {
    /// Ascending wrap-around from the seed.
    Forward,
    /// Descending wrap-around from the seed.
    Reverse,
    /// Visit `seed + k·stride (mod num)` for `k = 1..num`; the stride is
    /// coprime to `num`, so the walk is a permutation of the ids.
    Stride(usize),
}

fn gcd(mut a: usize, mut b: usize) -> usize {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// The distinct seed orderings for a `num`-dichotomy list, at most
/// `requested` of them.
///
/// The old variants ≥ 2 rotated the list by a prime offset — a silent
/// duplicate of Forward, because rotation changes each seed's *position* but
/// not the ascending wrap order grown from it, so every rotated ordering
/// produced exactly the candidates of variant 0. Coprime strides fix that: a
/// stride `st` genuinely reorders the absorption sequence. Strides `1` and
/// `num - 1` are Forward and Reverse, each stride is used once, and the probe
/// starts from the old variants' prime offsets so the choice stays
/// decorrelated from the generation order.
fn seed_orders(num: usize, requested: usize) -> Vec<SeedOrder> {
    let mut orders = vec![SeedOrder::Forward];
    if requested >= 2 && num >= 2 {
        orders.push(SeedOrder::Reverse);
    }
    let mut used: Vec<usize> = Vec::new();
    let mut variant = 2usize;
    while orders.len() < requested && num >= 5 {
        let start = (variant * 7919) % num;
        let found = (0..num)
            .map(|k| (start + k) % num)
            .find(|&st| st >= 2 && st != num - 1 && gcd(st, num) == 1 && !used.contains(&st));
        let Some(st) = found else { break };
        used.push(st);
        orders.push(SeedOrder::Stride(st));
        variant += 1;
    }
    orders
}

/// One growing candidate: its two sides plus the incremental index state.
struct Grower<'a> {
    dichotomies: &'a [Dichotomy],
    index: &'a DichotomyIndex,
    growth: &'a mut GrowthScratch,
    left: StateSet,
    right: StateSet,
}

impl Grower<'_> {
    /// Absorb dichotomy `id` into the candidate. Must only be called while
    /// the id is allowed; prefers the direct orientation like `try_absorb`.
    fn absorb(&mut self, id: usize) {
        let d = &self.dichotomies[id];
        let (dl, dr) = if self.growth.direct_ok(id) {
            (d.left(), d.right())
        } else {
            debug_assert!(self.growth.flip_ok(id));
            (d.right(), d.left())
        };
        for s in dl.iter() {
            if self.left.insert(s) {
                self.growth.add_left_state(self.index, s);
            }
        }
        for s in dr.iter() {
            if self.right.insert(s) {
                self.growth.add_right_state(self.index, s);
            }
        }
        self.growth.mark_absorbed(id);
    }

    /// Absorb every still-allowed id in `[lo, hi)`, ascending. Word-granular:
    /// each iteration re-reads the word's allowed bits, so ids blocked by an
    /// absorption earlier in the sweep are never visited (the allowed set
    /// only shrinks, so re-taking the lowest live bit preserves the order).
    fn sweep_ascending(&mut self, lo: usize, hi: usize) {
        if lo >= hi {
            return;
        }
        let (wlo, whi) = (lo / 64, (hi - 1) / 64);
        for w in wlo..=whi {
            let mut mask = !0u64;
            if w == wlo {
                mask &= !0u64 << (lo % 64);
            }
            if w == whi && hi % 64 != 0 {
                mask &= !0u64 >> (64 - hi % 64);
            }
            loop {
                let live = self.growth.allowed_word(w) & mask;
                if live == 0 {
                    break;
                }
                self.absorb(w * 64 + live.trailing_zeros() as usize);
            }
        }
    }

    /// Absorb every still-allowed id in `[lo, hi)`, descending.
    fn sweep_descending(&mut self, lo: usize, hi: usize) {
        if lo >= hi {
            return;
        }
        let (wlo, whi) = (lo / 64, (hi - 1) / 64);
        for w in (wlo..=whi).rev() {
            let mut mask = !0u64;
            if w == wlo {
                mask &= !0u64 << (lo % 64);
            }
            if w == whi && hi % 64 != 0 {
                mask &= !0u64 >> (64 - hi % 64);
            }
            loop {
                let live = self.growth.allowed_word(w) & mask;
                if live == 0 {
                    break;
                }
                self.absorb(w * 64 + 63 - live.leading_zeros() as usize);
            }
        }
    }

    /// Run the growth sequence of `order` from `seed_pos`. One pass
    /// suffices: a dichotomy incompatible with the candidate stays
    /// incompatible forever (the sides only grow and both orientations'
    /// conflicts are monotone in them), so the second wrap-around pass of
    /// the replaced scan could never absorb anything new.
    fn grow(&mut self, seed_pos: usize, order: SeedOrder) {
        let num = self.dichotomies.len();
        match order {
            SeedOrder::Forward => {
                self.sweep_ascending(seed_pos, num);
                self.sweep_ascending(0, seed_pos);
            }
            SeedOrder::Reverse => {
                self.sweep_descending(0, (seed_pos + 1).min(num));
                self.sweep_descending(seed_pos + 1, num);
            }
            SeedOrder::Stride(stride) => {
                let mut id = seed_pos;
                for _ in 1..num {
                    id = (id + stride) % num;
                    if self.growth.allowed(id) {
                        self.absorb(id);
                    }
                }
            }
        }
    }
}

/// Grow one candidate from `seed` and push it (deduplicated) onto the pool.
#[allow(clippy::too_many_arguments)]
fn grow_and_emit(
    dichotomies: &[Dichotomy],
    index: &DichotomyIndex,
    growth: &mut GrowthScratch,
    seen: &mut fantom_boolean::collections::HashSet<Dichotomy>,
    candidates: &mut Vec<Partition>,
    state_bound: usize,
    seed: &Dichotomy,
    seed_id: Option<usize>,
    order: SeedOrder,
) {
    growth.reset(dichotomies.len());
    let mut left = StateSet::new(state_bound as u64);
    let mut right = StateSet::new(state_bound as u64);
    left.union_with(seed.left());
    right.union_with(seed.right());
    for s in left.iter() {
        growth.add_left_state(index, s);
    }
    for s in right.iter() {
        growth.add_right_state(index, s);
    }
    if let Some(id) = seed_id {
        growth.mark_absorbed(id);
    }
    let mut grower = Grower {
        dichotomies,
        index,
        growth,
        left,
        right,
    };
    grower.grow(seed_id.unwrap_or(0), order);
    let Grower { left, right, .. } = grower;
    // The grown orientation is the seed's orientation: `right` stays the
    // 1-coded side, so the incrementally maintained coverage set matches it.
    let dichotomy = Dichotomy::from_oriented_sets(left, right);
    if seen.insert(dichotomy.clone()) {
        debug_assert!(
            growth
                .covers()
                .same_contents(&Partition::new(dichotomy.clone(), dichotomies).covers),
            "incremental covers diverge from the separation rescan"
        );
        candidates.push(Partition::from_parts(dichotomy, growth.covers().clone()));
    }
}

/// Fill `scratch.candidates` with the deduplicated candidate pool: adjacency
/// `seeds` first (they reach merges the dichotomy-seeded orderings tend to
/// miss on wide-column machines), then one candidate per (dichotomy, seed
/// ordering) pair, capped at `options.max_candidate_partitions`.
fn candidate_partitions_in(
    dichotomies: &[Dichotomy],
    seeds: &[Dichotomy],
    options: &AssignmentOptions,
    scratch: &mut AssignScratch,
) {
    let num = dichotomies.len();
    let state_bound = dichotomies
        .iter()
        .chain(seeds)
        .map(|d| d.left().capacity().max(d.right().capacity()))
        .max()
        .unwrap_or(0) as usize;
    let AssignScratch {
        index,
        growth,
        seen,
        candidates,
        ..
    } = scratch;
    index.rebuild(state_bound, dichotomies);
    seen.clear();
    candidates.clear();

    for seed in seeds {
        if candidates.len() >= options.max_candidate_partitions {
            return;
        }
        if seed.left().is_empty() || seed.right().is_empty() {
            continue;
        }
        grow_and_emit(
            dichotomies,
            index,
            growth,
            seen,
            candidates,
            state_bound,
            seed,
            None,
            SeedOrder::Forward,
        );
    }
    for &order in &seed_orders(num, options.seed_orderings.max(1)) {
        for k in 0..num {
            if candidates.len() >= options.max_candidate_partitions {
                return;
            }
            let seed = match order {
                SeedOrder::Forward => k,
                SeedOrder::Reverse => num - 1 - k,
                SeedOrder::Stride(st) => (k * st) % num,
            };
            grow_and_emit(
                dichotomies,
                index,
                growth,
                seen,
                candidates,
                state_bound,
                &dichotomies[seed],
                Some(seed),
                order,
            );
        }
    }
}

/// Grow the deduplicated candidate pool for `dichotomies` — optionally with
/// extra adjacency `seeds` grown first — and return it as a slice borrowed
/// from `scratch`. [`select_partitions_in`] uses this internally; it is
/// public for the differential harness and the micro benchmarks.
pub fn grow_candidates<'a>(
    dichotomies: &[Dichotomy],
    seeds: &[Dichotomy],
    options: &AssignmentOptions,
    scratch: &'a mut AssignScratch,
) -> &'a [Partition] {
    candidate_partitions_in(dichotomies, seeds, options, scratch);
    &scratch.candidates
}

/// Select a small set of partitions (state variables) such that every
/// dichotomy is separated by at least one selected partition, using the
/// default [`AssignmentOptions`].
pub fn select_partitions(dichotomies: &[Dichotomy]) -> Vec<Partition> {
    select_partitions_with(dichotomies, &AssignmentOptions::default())
}

/// Select a covering set of partitions under the budgets of `options`.
///
/// Small candidate sets get an exact minimum-cover search (bounded by
/// `exact_node_budget`); everything else — and exact searches that blow the
/// budget — goes through the lazy-max greedy cover plus `refine_passes`
/// rounds of local search. Dichotomies the budgets left uncovered each
/// receive their own dedicated partition, so the result always covers the
/// whole list.
pub fn select_partitions_with(
    dichotomies: &[Dichotomy],
    options: &AssignmentOptions,
) -> Vec<Partition> {
    select_partitions_in(dichotomies, &[], options, &mut AssignScratch::default())
}

/// [`select_partitions_with`] with explicit adjacency `seeds` and reusable
/// `scratch` buffers — the batch entry point the synthesis `Workspace` calls.
pub fn select_partitions_in(
    dichotomies: &[Dichotomy],
    seeds: &[Dichotomy],
    options: &AssignmentOptions,
    scratch: &mut AssignScratch,
) -> Vec<Partition> {
    if dichotomies.is_empty() {
        return Vec::new();
    }
    candidate_partitions_in(dichotomies, seeds, options, scratch);
    let num = dichotomies.len();
    let candidates = &scratch.candidates;

    let mut best: Option<Vec<usize>> = None;
    if candidates.len() <= options.exact_max_candidates {
        scratch.undo.clear();
        best = exact_cover(
            candidates,
            num,
            options.exact_node_budget,
            &mut scratch.undo,
        );
    }
    if best.is_none() {
        let greedy_pick = greedy_cover_by(
            |i| &candidates[i].covers,
            candidates.len(),
            num,
            &mut scratch.heap,
        );
        best = Some(refine_cover(
            greedy_pick,
            candidates,
            num,
            options.refine_passes,
        ));
    }
    let chosen = best.expect("some selection path ran");

    let mut selected: Vec<Partition> = chosen.iter().map(|&i| candidates[i].clone()).collect();

    // Guaranteed-coverage fallback: whatever the budgets cut, every dichotomy
    // ends up separated — in the worst case by a partition of its own.
    let mut covered = MintermSet::new(num as u64);
    for p in &selected {
        covered.union_with(&p.covers);
    }
    for (i, d) in dichotomies.iter().enumerate() {
        if !covered.contains(i as u64) {
            let p = Partition::new(d.clone(), dichotomies);
            covered.union_with(&p.covers);
            selected.push(p);
        }
    }
    selected
}

/// Exact minimum cover over the candidate set: try sizes `1..` and return the
/// first size that admits a cover. Returns `None` when the node budget is
/// exhausted before an answer is certain.
fn exact_cover(
    candidates: &[Partition],
    num: usize,
    node_budget: u64,
    undo: &mut Vec<(u32, u64)>,
) -> Option<Vec<usize>> {
    // Big candidates first: covers are found earlier and the size bound
    // prunes harder.
    let mut order: Vec<usize> = (0..candidates.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(candidates[i].covers.len()));
    let mut nodes = 0u64;
    for k in 1..=candidates.len() {
        let mut uncovered = MintermSet::from_minterms(num as u64, 0..num as u64);
        let mut chosen = Vec::new();
        match exact_rec(
            candidates,
            &order,
            k,
            0,
            &mut uncovered,
            &mut chosen,
            undo,
            &mut nodes,
            node_budget,
        ) {
            ExactOutcome::Found(sol) => return Some(sol),
            ExactOutcome::Exhausted => continue,
            ExactOutcome::OutOfBudget => return None,
        }
    }
    None
}

enum ExactOutcome {
    Found(Vec<usize>),
    Exhausted,
    OutOfBudget,
}

#[allow(clippy::too_many_arguments)]
fn exact_rec(
    candidates: &[Partition],
    order: &[usize],
    k: usize,
    start: usize,
    uncovered: &mut MintermSet,
    chosen: &mut Vec<usize>,
    undo: &mut Vec<(u32, u64)>,
    nodes: &mut u64,
    node_budget: u64,
) -> ExactOutcome {
    *nodes += 1;
    if *nodes > node_budget {
        return ExactOutcome::OutOfBudget;
    }
    if uncovered.is_empty() {
        return ExactOutcome::Found(chosen.clone());
    }
    if chosen.len() == k {
        return ExactOutcome::Exhausted;
    }
    let picks_left = k - chosen.len();
    for pos in start..candidates.len() {
        // Not enough candidates left to reach size k.
        if candidates.len() - pos < picks_left {
            break;
        }
        let cand = order[pos];
        if candidates[cand].covers.intersection_count(uncovered) == 0 {
            continue;
        }
        // Mutate in place with a word-level undo record: the search explores
        // up to `node_budget` nodes, so per-node set clones would be pure
        // allocator traffic.
        let undo_mark = undo.len();
        uncovered.subtract_with_undo(&candidates[cand].covers, undo);
        chosen.push(cand);
        let outcome = exact_rec(
            candidates,
            order,
            k,
            pos + 1,
            uncovered,
            chosen,
            undo,
            nodes,
            node_budget,
        );
        match outcome {
            ExactOutcome::Exhausted => {}
            other => return other,
        }
        chosen.pop();
        uncovered.undo_subtract(&undo[undo_mark..]);
        undo.truncate(undo_mark);
    }
    ExactOutcome::Exhausted
}

/// Greedy set cover over explicit coverage sets: repeatedly take the set
/// covering the most still-uncovered dichotomies, ties to the earlier index.
/// Public for the differential harness; selection calls the same
/// implementation with its scratch heap.
pub fn greedy_cover_sets(covers: &[MintermSet], num: usize) -> Vec<usize> {
    greedy_cover_by(|i| &covers[i], covers.len(), num, &mut BinaryHeap::new())
}

/// Lazy-max greedy cover. The heap holds `(gain upper bound, Reverse(index))`
/// keys; coverage gains only shrink as dichotomies get covered, so a popped
/// entry wins outright if its *recomputed* gain still beats every remaining
/// upper bound, and re-enters with the fresh key otherwise. Picks — including
/// the smaller-index tie-break — are exactly those of the rescan-per-pick
/// loop this replaces, without the full candidate scan per selection.
fn greedy_cover_by<'a>(
    cover: impl Fn(usize) -> &'a MintermSet,
    n_candidates: usize,
    num: usize,
    heap: &mut BinaryHeap<(usize, Reverse<usize>)>,
) -> Vec<usize> {
    let mut uncovered = MintermSet::from_minterms(num as u64, 0..num as u64);
    let mut chosen: Vec<usize> = Vec::new();
    heap.clear();
    heap.extend((0..n_candidates).filter_map(|i| {
        let len = cover(i).len();
        (len > 0).then_some((len, Reverse(i)))
    }));
    while let Some((gain, Reverse(i))) = heap.pop() {
        if uncovered.is_empty() {
            break;
        }
        let fresh = cover(i).intersection_count(&uncovered);
        if fresh == 0 {
            continue;
        }
        if fresh == gain || heap.peek().map_or(true, |&top| (fresh, Reverse(i)) >= top) {
            uncovered.subtract(cover(i));
            chosen.push(i);
        } else {
            heap.push((fresh, Reverse(i)));
        }
    }
    heap.clear();
    chosen
}

/// Local-search refinement of a cover: drop partitions that no longer cover
/// anything uniquely, and replace pairs of partitions by a single candidate
/// that covers everything only they covered. Each successful replacement
/// shrinks the code by one variable; the loop runs until a pass changes
/// nothing or `passes` rounds have run.
fn refine_cover(
    mut selected: Vec<usize>,
    candidates: &[Partition],
    num: usize,
    passes: usize,
) -> Vec<usize> {
    for _ in 0..passes {
        let mut changed = false;

        // Drop to fixpoint: a partition every one of whose dichotomies is
        // also covered elsewhere is redundant.
        let mut counts = coverage_counts(&selected, candidates, num);
        let mut i = 0;
        while i < selected.len() {
            let covers = &candidates[selected[i]].covers;
            let unique = covers.iter().any(|d| counts[d as usize] == 1);
            if !unique && selected.len() > 1 {
                for d in covers.iter() {
                    counts[d as usize] -= 1;
                }
                selected.remove(i);
                changed = true;
            } else {
                i += 1;
            }
        }

        // Consolidate to fixpoint: if one unselected candidate covers
        // everything partitions i and j cover uniquely, it can replace both
        // (every replacement shrinks the code by one variable, so this loop
        // runs at most `selected.len()` times).
        'consolidate: loop {
            let counts = coverage_counts(&selected, candidates, num);
            for i in 0..selected.len() {
                for j in (i + 1)..selected.len() {
                    // Everything that loses its last cover when BOTH i and j
                    // go: dichotomies whose full coverage comes from the pair.
                    let ci = &candidates[selected[i]].covers;
                    let cj = &candidates[selected[j]].covers;
                    let mut need = MintermSet::new(num as u64);
                    for d in ci.iter().chain(cj.iter()) {
                        let pair_coverage =
                            usize::from(ci.contains(d)) + usize::from(cj.contains(d));
                        if counts[d as usize] as usize == pair_coverage {
                            need.insert(d);
                        }
                    }
                    let replacement = (0..candidates.len())
                        .find(|r| !selected.contains(r) && need.is_subset(&candidates[*r].covers));
                    if let Some(r) = replacement {
                        // Remove j first so index i stays valid.
                        selected.remove(j);
                        selected.remove(i);
                        selected.push(r);
                        changed = true;
                        continue 'consolidate;
                    }
                }
            }
            break;
        }

        if !changed {
            break;
        }
    }
    selected
}

/// How many selected partitions cover each dichotomy.
fn coverage_counts(selected: &[usize], candidates: &[Partition], num: usize) -> Vec<u32> {
    let mut counts = vec![0u32; num];
    for &s in selected {
        for d in candidates[s].covers.iter() {
            counts[d as usize] += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dichotomy::required_dichotomies;
    use fantom_flow::{benchmarks, StateId};

    fn check_all_covered(dichotomies: &[Dichotomy], partitions: &[Partition]) {
        for (i, d) in dichotomies.iter().enumerate() {
            let covered = partitions.iter().any(|p| d.separated_by(p.ones()));
            assert!(covered, "dichotomy {i} ({d}) not covered");
        }
    }

    #[test]
    fn partitions_cover_all_dichotomies_for_every_benchmark() {
        for table in benchmarks::all() {
            let dichotomies = required_dichotomies(&table);
            let partitions = select_partitions(&dichotomies);
            check_all_covered(&dichotomies, &partitions);
        }
    }

    #[test]
    fn every_budget_still_covers_everything() {
        let brutal = AssignmentOptions {
            max_candidate_partitions: 1,
            seed_orderings: 1,
            refine_passes: 0,
            exact_max_candidates: 0,
            exact_node_budget: 0,
            adjacency_seeding: false,
        };
        for table in benchmarks::all() {
            let dichotomies = required_dichotomies(&table);
            let partitions = select_partitions_with(&dichotomies, &brutal);
            check_all_covered(&dichotomies, &partitions);
        }
    }

    #[test]
    fn variable_count_is_at_least_ceil_log2_states() {
        for table in benchmarks::all() {
            let dichotomies = required_dichotomies(&table);
            let partitions = select_partitions(&dichotomies);
            let lower = (usize::BITS - (table.num_states() - 1).leading_zeros()) as usize;
            assert!(
                partitions.len() >= lower,
                "{}: {} variables cannot encode {} states",
                table.name(),
                partitions.len(),
                table.num_states()
            );
            // And it should never need more variables than states.
            assert!(partitions.len() <= table.num_states());
        }
    }

    #[test]
    fn refinement_never_grows_the_greedy_cover() {
        for table in benchmarks::all() {
            let dichotomies = required_dichotomies(&table);
            let no_exact = AssignmentOptions {
                exact_max_candidates: 0,
                refine_passes: 0,
                ..AssignmentOptions::default()
            };
            let refined_opts = AssignmentOptions {
                exact_max_candidates: 0,
                ..AssignmentOptions::default()
            };
            let unrefined = select_partitions_with(&dichotomies, &no_exact);
            let refined = select_partitions_with(&dichotomies, &refined_opts);
            assert!(
                refined.len() <= unrefined.len(),
                "{}: refinement grew the cover {} -> {}",
                table.name(),
                unrefined.len(),
                refined.len()
            );
            check_all_covered(&dichotomies, &refined);
        }
    }

    #[test]
    fn empty_dichotomy_list_needs_no_partitions() {
        assert!(select_partitions(&[]).is_empty());
    }

    #[test]
    fn simple_two_state_case_needs_one_variable() {
        let d = vec![Dichotomy::new([StateId(0)], [StateId(1)])];
        let partitions = select_partitions(&d);
        assert_eq!(partitions.len(), 1);
    }

    #[test]
    fn seed_orders_are_distinct_and_stride_valid() {
        for num in [1usize, 2, 3, 4, 5, 8, 12, 13, 40, 97, 211] {
            let orders = seed_orders(num, 8);
            for (i, a) in orders.iter().enumerate() {
                for b in &orders[i + 1..] {
                    assert_ne!(a, b, "duplicate ordering for num={num}");
                }
                if let SeedOrder::Stride(st) = *a {
                    assert!(st >= 2 && st != num - 1, "degenerate stride {st}/{num}");
                    assert_eq!(gcd(st, num), 1, "stride {st} not coprime to {num}");
                }
            }
            assert_eq!(orders[0], SeedOrder::Forward);
            assert!(!orders.is_empty() && orders.len() <= 8);
        }
    }

    #[test]
    fn incremental_covers_match_separation_rescan() {
        // Release-mode version of the growth engine's debug assertion.
        let options = AssignmentOptions::default();
        let mut scratch = AssignScratch::default();
        for table in benchmarks::all() {
            let dichotomies = required_dichotomies(&table);
            for p in grow_candidates(&dichotomies, &[], &options, &mut scratch) {
                for (i, d) in dichotomies.iter().enumerate() {
                    assert_eq!(
                        p.covers().contains(i as u64),
                        d.separated_by(p.ones()),
                        "{}: covers bit {i} wrong",
                        table.name()
                    );
                }
            }
        }
    }

    #[test]
    fn extra_orderings_extend_the_candidate_pool_prefix() {
        let table = benchmarks::train11();
        let dichotomies = required_dichotomies(&table);
        let two = AssignmentOptions {
            seed_orderings: 2,
            ..AssignmentOptions::default()
        };
        let six = AssignmentOptions {
            seed_orderings: 6,
            ..AssignmentOptions::default()
        };
        let mut scratch = AssignScratch::default();
        let first = grow_candidates(&dichotomies, &[], &two, &mut scratch).to_vec();
        let more = grow_candidates(&dichotomies, &[], &six, &mut scratch).to_vec();
        assert!(more.len() >= first.len());
        assert_eq!(
            &more[..first.len()],
            &first[..],
            "pool is not prefix-stable"
        );
    }

    #[test]
    fn lazy_greedy_matches_rescan_reference() {
        for table in benchmarks::all() {
            let dichotomies = required_dichotomies(&table);
            let mut scratch = AssignScratch::default();
            let options = AssignmentOptions::default();
            let covers: Vec<MintermSet> =
                grow_candidates(&dichotomies, &[], &options, &mut scratch)
                    .iter()
                    .map(|p| p.covers().clone())
                    .collect();
            let num = dichotomies.len();
            // Rescan-per-pick oracle, verbatim from the replaced loop.
            let mut uncovered = MintermSet::from_minterms(num as u64, 0..num as u64);
            let mut expected: Vec<usize> = Vec::new();
            while !uncovered.is_empty() {
                let mut best: Option<(usize, usize)> = None;
                for (i, c) in covers.iter().enumerate() {
                    let gain = c.intersection_count(&uncovered);
                    if gain > 0 && best.map_or(true, |(_, g)| gain > g) {
                        best = Some((i, gain));
                    }
                }
                let Some((pick, _)) = best else { break };
                uncovered.subtract(&covers[pick]);
                expected.push(pick);
            }
            assert_eq!(
                greedy_cover_sets(&covers, num),
                expected,
                "{}: lazy greedy diverges",
                table.name()
            );
        }
    }
}
