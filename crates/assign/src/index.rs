//! Inverted dichotomy index and growth scratch for indexed candidate growth.
//!
//! Candidate partitions are grown by absorbing compatible dichotomies into a
//! seed. The absorption-compatibility and coverage tests both reduce to
//! *state-membership* questions — "which dichotomies put state `s` in their
//! left (right) group?" — so one inverted index answers them for every seed
//! of every ordering: a [`DichotomyIndex`] keeps, per state, two **posting
//! bitsets** over dichotomy ids (the `CoverIndex` phase-bucket idiom of
//! `fantom_boolean::index`, with states playing the role of variables and
//! left/right the role of phases).
//!
//! On top of the index, a [`GrowthScratch`] maintains the per-candidate state
//! *incrementally* while states join the growing partition:
//!
//! * **blocked sets** — a dichotomy is absorbable in the direct orientation
//!   iff its left group avoids the candidate's right side and vice versa, so
//!   when state `s` joins a side the ids newly blocked are exactly the
//!   posting bitsets of `s`: two lane-parallel ORs replace the per-dichotomy
//!   disjointness probes, and the growth pass enumerates only ids still
//!   outside `blocked_direct ∩ blocked_flip` instead of re-testing the full
//!   list;
//! * **coverage counts** — a dichotomy is separated by the candidate's
//!   1-coded set `R` iff one group lies inside `R` and the other outside it,
//!   so per-id counters of `|left ∩ R|` / `|right ∩ R|` (bumped from the
//!   posting bitsets as states join `R`) maintain the partition's `covers`
//!   set during absorption — the full `O(|dichotomies|)` separation rescan
//!   the old `Partition` constructor paid per candidate is gone.
//!
//! Both structures live in [`AssignScratch`](crate::AssignScratch) so batch
//! callers reuse the allocations across synthesis calls (the `Workspace`
//! carry-over of the service layer).

use fantom_boolean::{lane, MintermSet};

use crate::dichotomy::Dichotomy;

/// Inverted state → dichotomy-id index: for every state, the packed set of
/// dichotomy ids whose left (right) group contains the state, plus the group
/// sizes the coverage counters compare against. Built once per assignment
/// call and shared by every seed ordering (see the [module docs](self)).
#[derive(Debug, Default)]
pub struct DichotomyIndex {
    /// Number of dichotomies indexed.
    num: usize,
    /// Per state: ids of dichotomies whose left group contains the state.
    left_ids: Vec<MintermSet>,
    /// Per state: ids of dichotomies whose right group contains the state.
    right_ids: Vec<MintermSet>,
    /// Per dichotomy: size of its left group.
    left_size: Vec<u32>,
    /// Per dichotomy: size of its right group.
    right_size: Vec<u32>,
}

impl DichotomyIndex {
    /// Build an index over `dichotomies` for a `num_states`-state machine.
    pub fn build(num_states: usize, dichotomies: &[Dichotomy]) -> Self {
        let mut index = DichotomyIndex::default();
        index.rebuild(num_states, dichotomies);
        index
    }

    /// Rebuild in place, reusing the posting-bitset allocations of the
    /// previous build where the id-space width still fits (the batch-service
    /// reuse path: a worker's scratch serves a stream of same-shaped
    /// machines).
    pub fn rebuild(&mut self, num_states: usize, dichotomies: &[Dichotomy]) {
        let num = dichotomies.len();
        self.num = num;
        let reset = |buckets: &mut Vec<MintermSet>| {
            for bucket in buckets.iter_mut() {
                if bucket.capacity() >= num as u64 {
                    bucket.clear();
                } else {
                    *bucket = MintermSet::new(num as u64);
                }
            }
            buckets.resize_with(num_states, || MintermSet::new(num as u64));
            buckets.truncate(num_states);
        };
        reset(&mut self.left_ids);
        reset(&mut self.right_ids);
        self.left_size.clear();
        self.right_size.clear();
        for (i, d) in dichotomies.iter().enumerate() {
            for s in d.left().iter() {
                self.left_ids[s as usize].insert(i as u64);
            }
            for s in d.right().iter() {
                self.right_ids[s as usize].insert(i as u64);
            }
            self.left_size.push(d.left().len() as u32);
            self.right_size.push(d.right().len() as u32);
        }
    }

    /// Number of dichotomies indexed.
    pub fn num_dichotomies(&self) -> usize {
        self.num
    }

    /// Ids whose left group contains `state`.
    pub fn left_ids(&self, state: u64) -> &MintermSet {
        &self.left_ids[state as usize]
    }

    /// Ids whose right group contains `state`.
    pub fn right_ids(&self, state: u64) -> &MintermSet {
        &self.right_ids[state as usize]
    }
}

/// Word count of the id space (the stride of every per-candidate bitset).
fn id_words(num: usize) -> usize {
    num.div_ceil(64)
}

/// Per-candidate growth state, maintained incrementally as states join the
/// candidate's sides (see the [module docs](self)). Reused across seeds: a
/// [`reset`](GrowthScratch::reset) is two or three word-array memsets, not an
/// allocation.
#[derive(Debug)]
pub struct GrowthScratch {
    /// Ids that conflict with the candidate in the direct orientation
    /// (left joins left): some left state sits in the candidate's right side
    /// or some right state in its left side.
    blocked_direct: Vec<u64>,
    /// Ids that conflict in the flipped orientation (left joins right).
    blocked_flip: Vec<u64>,
    /// Ids already absorbed into the candidate (skipped by the growth pass —
    /// re-absorbing is a no-op union).
    absorbed: Vec<u64>,
    /// `|d.left ∩ R|` per id, where `R` is the candidate's right side.
    left_count: Vec<u32>,
    /// `|d.right ∩ R|` per id.
    right_count: Vec<u32>,
    /// Ids currently separated by the candidate's right side — exactly the
    /// set the old `Partition::new` rescan recomputed per candidate.
    covers: MintermSet,
}

impl Default for GrowthScratch {
    fn default() -> Self {
        GrowthScratch {
            blocked_direct: Vec::new(),
            blocked_flip: Vec::new(),
            absorbed: Vec::new(),
            left_count: Vec::new(),
            right_count: Vec::new(),
            covers: MintermSet::new(0),
        }
    }
}

impl GrowthScratch {
    /// Clear the scratch for a new candidate over `num` dichotomy ids.
    pub fn reset(&mut self, num: usize) {
        let words = id_words(num);
        self.blocked_direct.clear();
        self.blocked_direct.resize(words, 0);
        self.blocked_flip.clear();
        self.blocked_flip.resize(words, 0);
        self.absorbed.clear();
        self.absorbed.resize(words, 0);
        self.left_count.clear();
        self.left_count.resize(num, 0);
        self.right_count.clear();
        self.right_count.resize(num, 0);
        if self.covers.capacity() >= num as u64 {
            self.covers.clear();
        } else {
            self.covers = MintermSet::new(num as u64);
        }
    }

    /// Record that `state` joined the candidate's **left** (0-coded) side:
    /// dichotomies with `state` in their right group can no longer merge
    /// directly, dichotomies with `state` in their left group can no longer
    /// merge flipped. Coverage is unaffected — separation depends only on
    /// the right side.
    #[inline]
    pub fn add_left_state(&mut self, index: &DichotomyIndex, state: u64) {
        lane::or_into(&mut self.blocked_direct, index.right_ids(state).words());
        lane::or_into(&mut self.blocked_flip, index.left_ids(state).words());
    }

    /// Record that `state` joined the candidate's **right** (1-coded) side:
    /// blocks the mirrored orientations and bumps the coverage counters of
    /// every dichotomy mentioning `state`, updating its covered bit.
    #[inline]
    pub fn add_right_state(&mut self, index: &DichotomyIndex, state: u64) {
        lane::or_into(&mut self.blocked_direct, index.left_ids(state).words());
        lane::or_into(&mut self.blocked_flip, index.right_ids(state).words());
        for id in index.left_ids(state).iter() {
            self.left_count[id as usize] += 1;
            self.update_covered(index, id);
        }
        for id in index.right_ids(state).iter() {
            self.right_count[id as usize] += 1;
            self.update_covered(index, id);
        }
    }

    /// Recompute the covered bit of `id` from its counters: covered iff one
    /// group lies entirely inside the right side and the other entirely
    /// outside it.
    #[inline]
    fn update_covered(&mut self, index: &DichotomyIndex, id: u64) {
        let lc = self.left_count[id as usize];
        let rc = self.right_count[id as usize];
        let covered = (lc == index.left_size[id as usize] && rc == 0)
            || (lc == 0 && rc == index.right_size[id as usize]);
        if covered {
            self.covers.insert(id);
        } else {
            self.covers.remove(id);
        }
    }

    /// Mark `id` as absorbed (skipped by later growth sweeps).
    #[inline]
    pub fn mark_absorbed(&mut self, id: usize) {
        self.absorbed[id / 64] |= 1 << (id % 64);
    }

    /// Whether `id` can be absorbed in the direct orientation.
    #[inline]
    pub fn direct_ok(&self, id: usize) -> bool {
        self.blocked_direct[id / 64] & (1 << (id % 64)) == 0
    }

    /// Whether `id` can be absorbed in the flipped orientation.
    #[inline]
    pub fn flip_ok(&self, id: usize) -> bool {
        self.blocked_flip[id / 64] & (1 << (id % 64)) == 0
    }

    /// Word `w` of the *enumerable* id set: not yet absorbed and absorbable
    /// in at least one orientation. Recomputed cheaply after every
    /// absorption, so a sweep never visits an id a previous absorption just
    /// blocked — matching the temporal semantics of the replaced scan, which
    /// re-tested each dichotomy at its turn.
    #[inline]
    pub fn allowed_word(&self, w: usize) -> u64 {
        !(self.blocked_direct[w] & self.blocked_flip[w]) & !self.absorbed[w]
    }

    /// Whether `id` is enumerable right now (the per-id variant of
    /// [`allowed_word`](GrowthScratch::allowed_word), used by stride sweeps).
    #[inline]
    pub fn allowed(&self, id: usize) -> bool {
        self.allowed_word(id / 64) & (1 << (id % 64)) != 0
    }

    /// The coverage set of the finished candidate.
    pub fn covers(&self) -> &MintermSet {
        &self.covers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dichotomy::required_dichotomies;
    use fantom_flow::benchmarks;

    #[test]
    fn index_posting_sets_match_group_membership() {
        for table in benchmarks::all() {
            let dichotomies = required_dichotomies(&table);
            let index = DichotomyIndex::build(table.num_states(), &dichotomies);
            assert_eq!(index.num_dichotomies(), dichotomies.len());
            for s in 0..table.num_states() as u64 {
                for (i, d) in dichotomies.iter().enumerate() {
                    assert_eq!(index.left_ids(s).contains(i as u64), d.left().contains(s));
                    assert_eq!(index.right_ids(s).contains(i as u64), d.right().contains(s));
                }
            }
        }
    }

    #[test]
    fn rebuild_reuses_and_matches_fresh_build() {
        let tables = [benchmarks::lion(), benchmarks::train11()];
        let mut index = DichotomyIndex::default();
        for table in &tables {
            let dichotomies = required_dichotomies(table);
            index.rebuild(table.num_states(), &dichotomies);
            let fresh = DichotomyIndex::build(table.num_states(), &dichotomies);
            assert_eq!(index.num, fresh.num);
            assert_eq!(index.left_size, fresh.left_size);
            assert_eq!(index.right_size, fresh.right_size);
            for s in 0..table.num_states() as u64 {
                assert!(index.left_ids(s).same_contents(fresh.left_ids(s)));
                assert!(index.right_ids(s).same_contents(fresh.right_ids(s)));
            }
        }
    }

    #[test]
    fn blocked_and_cover_state_matches_definitions() {
        // Grow a candidate by hand and cross-check the incremental state
        // against the word-parallel definitions on every step.
        let table = benchmarks::train11();
        let dichotomies = required_dichotomies(&table);
        let n = dichotomies.len();
        let index = DichotomyIndex::build(table.num_states(), &dichotomies);
        let mut scratch = GrowthScratch::default();
        scratch.reset(n);

        let mut merged = dichotomies[0].clone();
        for s in merged.left().iter() {
            scratch.add_left_state(&index, s);
        }
        for s in merged.right().iter() {
            scratch.add_right_state(&index, s);
        }
        scratch.mark_absorbed(0);
        for (j, d) in dichotomies.iter().enumerate().take(n).skip(1) {
            let (direct, flip) = (scratch.direct_ok(j), scratch.flip_ok(j));
            assert_eq!(direct || flip, merged.clone().try_absorb(d));
            if !scratch.allowed(j) {
                continue;
            }
            let (dl, dr) = if direct {
                (d.left().clone(), d.right().clone())
            } else {
                (d.right().clone(), d.left().clone())
            };
            for s in dl.iter() {
                if !merged.left().contains(s) {
                    scratch.add_left_state(&index, s);
                }
            }
            for s in dr.iter() {
                if !merged.right().contains(s) {
                    scratch.add_right_state(&index, s);
                }
            }
            scratch.mark_absorbed(j);
            assert!(merged.try_absorb(d));
        }
        for (i, d) in dichotomies.iter().enumerate() {
            assert_eq!(
                scratch.covers().contains(i as u64),
                d.separated_by(merged.right()),
                "covered bit of dichotomy {i} diverges from separated_by"
            );
        }
    }
}
