//! Differential property tests for the packed dichotomy engine: every
//! word-parallel operation (merge, separation, generation incl. subsumption)
//! is pinned against a `BTreeSet` reference oracle — a reimplementation of
//! the pre-packed engine's semantics — on randomly generated normal-mode
//! flow tables, and the budgeted covering/refinement/fallback paths are
//! checked for their validity guarantees.

use std::collections::BTreeSet;

use fantom_assign::{
    assign_with_options, required_dichotomies, select_partitions_with, state_set,
    AssignmentOptions, Dichotomy,
};
use fantom_flow::{Bits, FlowTable, StateId};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Reference oracle: the ordered-set dichotomy semantics the packed engine
// replaced, kept verbatim simple (no word tricks, no dedup shortcuts).

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct RefDichotomy {
    left: BTreeSet<usize>,
    right: BTreeSet<usize>,
}

impl RefDichotomy {
    fn new(a: impl IntoIterator<Item = usize>, b: impl IntoIterator<Item = usize>) -> Self {
        let a: BTreeSet<usize> = a.into_iter().collect();
        let b: BTreeSet<usize> = b.into_iter().collect();
        assert!(!a.is_empty() && !b.is_empty() && a.is_disjoint(&b));
        if a.iter().next() <= b.iter().next() {
            RefDichotomy { left: a, right: b }
        } else {
            RefDichotomy { left: b, right: a }
        }
    }

    fn merge(&self, other: &RefDichotomy) -> Option<RefDichotomy> {
        let oriented = |al: &BTreeSet<usize>,
                        ar: &BTreeSet<usize>,
                        bl: &BTreeSet<usize>,
                        br: &BTreeSet<usize>| {
            let left: BTreeSet<usize> = al.union(bl).copied().collect();
            let right: BTreeSet<usize> = ar.union(br).copied().collect();
            left.is_disjoint(&right)
                .then_some(RefDichotomy { left, right })
        };
        oriented(&self.left, &self.right, &other.left, &other.right)
            .or_else(|| oriented(&self.left, &self.right, &other.right, &other.left))
    }

    fn separated_by(&self, ones: &BTreeSet<usize>) -> bool {
        let all_in = |g: &BTreeSet<usize>| g.iter().all(|s| ones.contains(s));
        let all_out = |g: &BTreeSet<usize>| g.iter().all(|s| !ones.contains(s));
        (all_in(&self.left) && all_out(&self.right)) || (all_out(&self.left) && all_in(&self.right))
    }

    fn subsumed_by(&self, big: &RefDichotomy) -> bool {
        (self.left.is_subset(&big.left) && self.right.is_subset(&big.right))
            || (self.left.is_subset(&big.right) && self.right.is_subset(&big.left))
    }
}

/// The pre-packed `required_dichotomies`: transition-group pairs per column
/// plus all state pairs, strict-subsumption filtered.
fn oracle_required_dichotomies(table: &FlowTable) -> BTreeSet<RefDichotomy> {
    let mut set: BTreeSet<RefDichotomy> = BTreeSet::new();
    for c in 0..table.num_columns() {
        let groups: BTreeSet<BTreeSet<usize>> = table
            .states()
            .filter_map(|s| {
                table
                    .next_state(s, c)
                    .map(|t| [s.0, t.0].into_iter().collect())
            })
            .collect();
        let groups: Vec<BTreeSet<usize>> = groups.into_iter().collect();
        for (i, g1) in groups.iter().enumerate() {
            for g2 in &groups[i + 1..] {
                if g1.is_disjoint(g2) {
                    set.insert(RefDichotomy::new(g1.iter().copied(), g2.iter().copied()));
                }
            }
        }
    }
    for a in table.states() {
        for b in table.states() {
            if a < b {
                set.insert(RefDichotomy::new([a.0], [b.0]));
            }
        }
    }
    let all: Vec<RefDichotomy> = set.into_iter().collect();
    all.iter()
        .filter(|d| {
            !all.iter()
                .any(|o| *d != o && d.subsumed_by(o) && !o.subsumed_by(d))
        })
        .cloned()
        .collect()
}

fn to_ref(d: &Dichotomy) -> RefDichotomy {
    RefDichotomy {
        left: d.left_states().map(|s| s.0).collect(),
        right: d.right_states().map(|s| s.0).collect(),
    }
}

// ---------------------------------------------------------------------------
// Random normal-mode flow tables (same construction as the benchmark corpus:
// stable column per state, remaining columns wired to stable destinations).

fn arb_flow_table() -> impl Strategy<Value = FlowTable> {
    let num_states = 3usize..7;
    num_states
        .prop_flat_map(|n| {
            (
                Just(n),
                proptest::collection::vec(0usize..4, n),
                proptest::collection::vec(0usize..n, n * 4),
                proptest::collection::vec(0u8..3, n * 4),
                proptest::collection::vec(any::<bool>(), n),
            )
        })
        .prop_map(|(n, stable_cols, dests, specify, outputs)| {
            build_table(n, &stable_cols, &dests, &specify, &outputs)
        })
        .prop_filter("table must be acceptable to SEANCE", |t| {
            fantom_flow::validate::validate(t).is_acceptable()
        })
}

fn build_table(
    n: usize,
    stable_cols: &[usize],
    dests: &[usize],
    specify: &[u8],
    outputs: &[bool],
) -> FlowTable {
    let names: Vec<String> = (0..n).map(|i| format!("R{i}")).collect();
    let mut table = FlowTable::new("random", 2, 1, names).expect("non-empty table");
    for s in 0..n {
        let out = Bits::from_bools(vec![outputs[s]]);
        table
            .set_entry(
                StateId(s),
                stable_cols[s],
                Some(StateId(s)),
                Some(out.clone()),
            )
            .expect("valid entry");
        for c in 0..4 {
            if c == stable_cols[s] {
                continue;
            }
            let idx = s * 4 + c;
            if specify[idx] == 2 {
                continue;
            }
            let candidate = (0..n)
                .map(|k| (dests[idx] + k) % n)
                .find(|&d| stable_cols[d] == c);
            if let Some(d) = candidate {
                table
                    .set_entry(StateId(s), c, Some(StateId(d)), Some(out.clone()))
                    .expect("valid entry");
            }
        }
    }
    table
}

fn starved_options() -> AssignmentOptions {
    AssignmentOptions {
        max_candidate_partitions: 1,
        seed_orderings: 1,
        refine_passes: 0,
        exact_max_candidates: 0,
        exact_node_budget: 0,
        adjacency_seeding: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Packed dichotomy generation agrees with the ordered-set oracle: same
    /// set of (left, right) group pairs after dedup and subsumption.
    #[test]
    fn generation_matches_oracle(table in arb_flow_table()) {
        let packed: BTreeSet<RefDichotomy> =
            required_dichotomies(&table).iter().map(to_ref).collect();
        let oracle = oracle_required_dichotomies(&table);
        prop_assert_eq!(packed, oracle);
    }

    /// Word-parallel merge agrees with the oracle on every pair of generated
    /// dichotomies (including the None cases).
    #[test]
    fn merge_matches_oracle(table in arb_flow_table()) {
        let dichotomies = required_dichotomies(&table);
        for a in &dichotomies {
            for b in &dichotomies {
                let packed = a.merge(b).map(|m| to_ref(&m));
                let oracle = to_ref(a).merge(&to_ref(b));
                prop_assert_eq!(packed, oracle, "merging {} with {}", a, b);
            }
        }
    }

    /// Word-parallel separation agrees with the oracle on pseudo-random
    /// candidate partitions.
    #[test]
    fn separation_matches_oracle(table in arb_flow_table(), seed in any::<u64>()) {
        let n = table.num_states();
        let ones_ids: Vec<usize> = (0..n).filter(|s| (seed >> s) & 1 == 1).collect();
        let packed_ones = state_set(n, ones_ids.iter().map(|&s| StateId(s)));
        let oracle_ones: BTreeSet<usize> = ones_ids.into_iter().collect();
        for d in required_dichotomies(&table) {
            prop_assert_eq!(
                d.separated_by(&packed_ones),
                to_ref(&d).separated_by(&oracle_ones),
                "separation of {} by {:?}", d, oracle_ones
            );
        }
    }

    /// The refined cover still covers every required dichotomy, on every
    /// budget tier.
    #[test]
    fn refined_cover_still_covers_everything(table in arb_flow_table()) {
        let dichotomies = required_dichotomies(&table);
        for options in [
            AssignmentOptions::default(),
            AssignmentOptions::bounded(),
            AssignmentOptions::thorough(),
        ] {
            let partitions = select_partitions_with(&dichotomies, &options);
            for d in &dichotomies {
                prop_assert!(
                    partitions.iter().any(|p| d.separated_by(p.ones())),
                    "dichotomy {} not covered", d
                );
            }
        }
    }

    /// Fallback codes always verify: even with every budget starved the
    /// assignment is race-free with pairwise-distinct codes.
    #[test]
    fn fallback_codes_always_verify(table in arb_flow_table()) {
        let assignment = assign_with_options(&table, &starved_options());
        prop_assert!(assignment.verify(&table).is_ok());
    }
}

/// The packed engine never spends more state variables on the benchmark
/// corpus than the ordered-set engine it replaced (widths recorded from the
/// pre-packed implementation at the PR 3 tree).
#[test]
fn small_corpus_code_widths_never_regress() {
    let old_widths = [
        ("test_example", 2),
        ("traffic", 2),
        ("lion", 2),
        ("lion9", 5),
        ("train11", 7),
        ("train4", 2),
        ("mic3", 2),
        ("redundant_traffic", 3),
    ];
    for (table, (name, old)) in fantom_flow::benchmarks::all().iter().zip(old_widths) {
        assert_eq!(table.name(), name, "corpus order changed");
        let assignment = fantom_assign::assign(table);
        assert!(
            assignment.num_vars() <= old,
            "{name}: packed engine needs {} vars, pre-packed needed {old}",
            assignment.num_vars()
        );
        assignment
            .verify(table)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}
