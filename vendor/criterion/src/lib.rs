//! Minimal, self-contained stand-in for the `criterion` benchmark harness.
//!
//! The workspace is built without network access, so this crate provides the
//! subset of the Criterion API the benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter` / `iter_batched`,
//! `black_box` and the `criterion_group!` / `criterion_main!` macros — backed
//! by a plain wall-clock sampler. Each benchmark is warmed up, then timed for
//! `sample_size` samples; the mean, minimum and maximum per-iteration times
//! are printed in a Criterion-like format.
//!
//! Statistical analysis (outlier rejection, regression detection, HTML
//! reports) is intentionally out of scope; the numbers are honest wall-clock
//! means suitable for before/after comparisons on the same machine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmark work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. The stub runs one setup per
/// routine invocation regardless of the variant, which is timing-equivalent
/// for the small inputs used here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs harness=false bench binaries with `--test`;
        // CRITERION_QUICK=1 forces the same single-pass mode manually.
        let quick = std::env::args().any(|a| a == "--test")
            || std::env::var_os("CRITERION_QUICK").is_some();
        Criterion { quick }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            quick: self.quick,
            _criterion: self,
        }
    }
}

/// A group of benchmarks sharing sampling configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    quick: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Duration of the untimed warm-up phase.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Total measurement budget across all samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Define and immediately run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            mode: if self.quick {
                Mode::Quick
            } else {
                Mode::Measure
            },
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&self.name, &id);
        self
    }

    /// Finish the group (reporting happens eagerly; kept for API parity).
    pub fn finish(&mut self) {}
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Quick,
    Measure,
}

/// Times a closure under the group's sampling configuration.
#[derive(Debug)]
pub struct Bencher {
    mode: Mode,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Benchmark a routine.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.run(|iters| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            start.elapsed()
        });
    }

    /// Benchmark a routine that consumes a fresh input per invocation; the
    /// setup closure is untimed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.run(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                total += start.elapsed();
            }
            total
        });
    }

    /// Shared sampling loop: `timed(iters)` must return the time spent on
    /// exactly `iters` invocations of the routine.
    fn run<F: FnMut(u64) -> Duration>(&mut self, mut timed: F) {
        if self.mode == Mode::Quick {
            let t = timed(1);
            self.samples.push(t);
            return;
        }
        // Warm up and calibrate how many iterations fill one sample slot.
        let warm_start = Instant::now();
        let mut calib_iters: u64 = 1;
        let mut calib_time = Duration::ZERO;
        while warm_start.elapsed() < self.warm_up {
            calib_time = timed(calib_iters);
            if calib_time < Duration::from_micros(50) {
                calib_iters = calib_iters.saturating_mul(4).max(2);
            } else {
                break;
            }
        }
        let per_iter = if calib_iters > 0 && !calib_time.is_zero() {
            calib_time / calib_iters as u32
        } else {
            Duration::from_nanos(1)
        };
        let slot = self.measurement / self.sample_size as u32;
        let iters_per_sample = if per_iter.is_zero() {
            calib_iters
        } else {
            (slot.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64
        };
        for _ in 0..self.sample_size {
            let elapsed = timed(iters_per_sample);
            self.samples.push(elapsed / iters_per_sample as u32);
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples.is_empty() {
            println!("{group}/{id}  (no samples)");
            return;
        }
        let min = self.samples.iter().min().copied().unwrap_or_default();
        let max = self.samples.iter().max().copied().unwrap_or_default();
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        println!(
            "{group}/{id}  time: [{} {} {}]",
            format_duration(min),
            format_duration(mean),
            format_duration(max)
        );
    }
}

/// Render a duration with Criterion-style units.
pub fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Declare a group of benchmark functions, Criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit a `main` that runs the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_runs_each_routine_once() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        let mut calls = 0u32;
        group
            .sample_size(10)
            .bench_function("once", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
        std::env::remove_var("CRITERION_QUICK");
    }

    #[test]
    fn format_duration_units() {
        assert_eq!(format_duration(Duration::from_nanos(42)), "42 ns");
        assert!(format_duration(Duration::from_micros(42)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(42)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
