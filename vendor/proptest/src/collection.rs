//! Collection strategies (`vec`, `btree_set`).

use std::collections::BTreeSet;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A fixed size or uniform size range for generated collections.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.hi_exclusive <= self.lo + 1 {
            self.lo
        } else {
            self.lo + rng.below((self.hi_exclusive - self.lo) as u64) as usize
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_exclusive: *r.end() + 1,
        }
    }
}

/// Generate a `Vec` of values from `element`, sized by `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generate a `BTreeSet`; duplicate draws are dropped, so the set size may be
/// below the requested size when the element space is small.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.pick(rng);
        let mut out = BTreeSet::new();
        // Bounded draw budget: small element domains may not be able to
        // produce `target` distinct values.
        for _ in 0..target.saturating_mul(8).max(8) {
            if out.len() >= target {
                break;
            }
            out.insert(self.element.generate(rng));
        }
        out
    }
}
