//! The [`Strategy`] trait and the core combinators.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike the real proptest there is no value tree / shrinking: a strategy is
/// simply a deterministic function of the RNG stream.
pub trait Strategy {
    /// The type of generated values.
    type Value: std::fmt::Debug;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: std::fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only values satisfying `pred`; rejected draws are retried.
    fn prop_filter<F>(self, whence: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            pred,
        }
    }
}

/// Always produce a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: std::fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..100_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected 100000 consecutive draws",
            self.whence
        );
    }
}

/// One alternative of a [`OneOf`]: a boxed generator closure.
pub type OneOfArm<V> = Box<dyn Fn(&mut TestRng) -> V>;

/// Uniform choice among boxed generator closures (built by `prop_oneof!`).
pub struct OneOf<V> {
    arms: Vec<OneOfArm<V>>,
}

impl<V> OneOf<V> {
    /// Build from one closure per alternative.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<OneOfArm<V>>) -> Self {
        assert!(
            !arms.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        OneOf { arms }
    }
}

impl<V: std::fmt::Debug> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        (self.arms[i])(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
