//! Minimal, self-contained stand-in for the `proptest` framework.
//!
//! The workspace is built without network access, so this crate implements
//! the subset of the proptest API the property tests use: the [`Strategy`]
//! trait with `prop_map` / `prop_flat_map` / `prop_filter`, range and tuple
//! strategies, [`collection::vec`] / [`collection::btree_set`],
//! [`option::of`], `any::<T>()`, `Just`, `prop_oneof!` and the `proptest!`
//! macro family (`prop_assert!`, `prop_assert_eq!`, `prop_assume!`).
//!
//! Differences from the real framework: generation is a deterministic
//! SplitMix64 stream seeded from the test name, failing cases are **not
//! shrunk** (the failing input is printed as-is via the assertion message),
//! and there is no persistence of regressions. For the deterministic,
//! moderate-sized inputs used in this workspace that trade-off keeps the
//! tests fast and the dependency surface zero.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// One-stop import mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Assert a condition inside a `proptest!` body, failing the current case
/// with the formatted message instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` for `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// `assert_ne!` for `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Discard the current case (counts as a rejection, not a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Choose uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $({
                let s = $strat;
                ::std::boxed::Box::new(move |rng: &mut $crate::test_runner::TestRng| {
                    $crate::strategy::Strategy::generate(&s, rng)
                }) as ::std::boxed::Box<
                    dyn Fn(&mut $crate::test_runner::TestRng) -> _
                >
            }),+
        ])
    };
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }` is
/// expanded into a `#[test]` that runs the body over `config.cases` generated
/// inputs; rejections (`prop_assume!`, `prop_filter`) are retried, failures
/// panic with the offending inputs included in the message.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            let mut executed: u32 = 0;
            let mut rejected: u32 = 0;
            while executed < config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let inputs = {
                    let mut s = ::std::string::String::new();
                    $(s.push_str(&format!("\n  {} = {:?}", stringify!($arg), $arg));)+
                    s
                };
                let case = (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match case {
                    ::core::result::Result::Ok(()) => executed += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        if rejected > config.max_global_rejects {
                            panic!(
                                "proptest {}: too many rejected cases ({rejected})",
                                stringify!($name)
                            );
                        }
                    }
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed after {executed} passing case(s): {}\n  inputs:{}",
                            stringify!($name),
                            msg,
                            inputs
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}
