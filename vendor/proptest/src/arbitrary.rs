//! `any::<T>()` — canonical strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Generate one uniform value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.bool()
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u16 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u16
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

/// The canonical whole-domain strategy of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
