//! Deterministic test-case generation state and configuration.

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required per property.
    pub cases: u32,
    /// Upper bound on rejected cases (`prop_assume!` / `prop_filter`) before
    /// the property errors out.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` passing cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was discarded (not counted as a failure).
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Build a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Deterministic SplitMix64 generator seeded from the property name, so every
/// run of a given test explores the same input sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary string (FNV-1a over the bytes).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sampling bound");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `bool`.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}
