//! Minimal, self-contained stand-in for the `rand` crate.
//!
//! The workspace is built without network access, so the handful of `rand`
//! APIs the simulator and validator actually use are provided here: a seeded
//! [`rngs::StdRng`], the [`SeedableRng`] constructor and [`Rng::gen_range`]
//! over integer ranges. The generator is a SplitMix64 stream — deterministic,
//! fast and statistically adequate for randomized gate delays and test
//! vectors. It is **not** cryptographically secure and makes no attempt to be
//! bit-compatible with the real `rand` crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Seeded construction of a random number generator.
pub trait SeedableRng: Sized {
    /// Build a generator whose whole stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface over a raw `u64` stream.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample uniformly from an integer range (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Sample a uniformly random `bool`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 random mantissa bits give a uniform float in [0, 1).
        let x = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        x < p
    }
}

/// A range that can produce uniform samples of `T`.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` by widening multiply (Lemire reduction,
/// without the rejection loop — the bias is < 2⁻³² for the small bounds used
/// by delay models and test harnesses).
fn below<R: Rng>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood): every seed yields a full
            // 2^64-period sequence with good avalanche behaviour.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(3..=9);
            assert!((3..=9).contains(&x));
            let y: usize = rng.gen_range(0..5);
            assert!(y < 5);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }
}
